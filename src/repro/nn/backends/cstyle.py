"""Compiled-kernel backend: fused groups rendered to C via cffi.

The numpy backend executes a fused group as a sequence of full-width
ufunc calls — one memory round-trip per op. This backend renders each
fused group of a realize plan into a *single* C function: one loop nest
over the output, scalar temporaries in registers for every in-group
elementwise op, and loads/stores only at the group boundary. The
contract is the same bitwise equivalence the numpy backend upholds:

- Ops are emitted in the exact order and double precision of the numpy
  reference. IEEE arithmetic (``+ - * /``), comparisons, ``sqrt`` and
  ``fabs`` are correctly rounded and therefore bit-identical by
  specification. ``-ffp-contract=off`` keeps the compiler from fusing
  multiply-adds into single-rounding FMAs.
- numpy's *pairwise summation* is replayed exactly (8-accumulator
  blocks, fixed combination tree, halving recursion aligned down to a
  multiple of 8) for full and last-axis ``sum``/``mean``; leading-axis
  reductions replay numpy's sequential row accumulation.
- ``maximum`` uses ``(a > b || isnan(a)) ? a : b`` — probed to match
  numpy 2.x on every NaN/±0 combination (numpy's SIMD loops return the
  *second* operand on equal ±0, unlike the textbook ``>=`` form).
- Anything that cannot be proven equivalent is simply not rendered:
  transcendentals whose libm differs from numpy's loops by an ulp
  (caught by :func:`_numeric_caps`, a compile-and-compare probe run
  once per process), exotic reduce layouts, BLAS matmuls. Groups
  containing an unrenderable op fall back to the per-op numpy closures
  — correctness never depends on coverage.

``compile_groups`` is the scheduler hook: it receives the fusion
grouping from :func:`repro.nn.realize._compile`, renders every
renderable group into one translation unit, compiles it through the
on-disk cache in :mod:`repro.nn.backends.ctoolchain`, and returns
``{root_index: (run, external_source_indices)}``. Per-op ``build_instr``
/ ``build_view`` delegate to the numpy backend, so unrendered groups
execute exactly as before.

The ``threaded`` variant (:mod:`repro.nn.backends.threaded`) reuses
every kernel unchanged: each function takes ``(lo, hi)`` bounds on its
outer loop, so row-independent kernels can be tiled across a thread
pool — cffi releases the GIL for the duration of the call.
"""

from __future__ import annotations

import math
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.backends import ctoolchain, numpy_backend
from repro.nn.lazyir import KIND_EW, KIND_OPAQUE, KIND_REDUCE, KIND_VIEW

# Per-op numpy closures for every group the renderer declines.
build_instr = numpy_backend.build_instr
build_view = numpy_backend.build_view

#: Stack buffers per kernel (reduce outputs + pairwise row buffers) are
#: capped well under the default 8 MB thread stack.
LOCAL_BYTES_CAP = 4 * 1024 * 1024

#: Elementwise kernels below this output size are not worth tiling.
TILE_MIN_ELEMS = 32768

_F8, _B1, _I8 = "<f8", "|b1", "<i8"

_HEADER = r"""
#include <math.h>
#include <stdint.h>
typedef long long i64;
typedef unsigned long long u64;

/* numpy 2.x maximum: returns the SECOND operand on equality (so
   max(+0,-0) == -0, matching the SIMD loops), NaN propagates. */
static inline double rr_max(double a, double b) {
    return (a > b || isnan(a)) ? a : b;
}
static inline double rr_sign(double a) {
    return a > 0.0 ? 1.0 : (a < 0.0 ? -1.0 : a);
}
/* numpy's pairwise summation, exactly: <8 sequential; <=128 via eight
   accumulators seeded from the first block then a fixed combination
   tree; else halve with the split aligned down to a multiple of 8. */
static double rr_pairwise(const double *a, i64 n) {
    if (n < 8) {
        double res = 0.0;
        for (i64 i = 0; i < n; i++) res += a[i];
        return res;
    }
    if (n <= 128) {
        double r0 = a[0], r1 = a[1], r2 = a[2], r3 = a[3];
        double r4 = a[4], r5 = a[5], r6 = a[6], r7 = a[7];
        i64 i = 8;
        for (; i + 8 <= n; i += 8) {
            r0 += a[i];     r1 += a[i + 1]; r2 += a[i + 2]; r3 += a[i + 3];
            r4 += a[i + 4]; r5 += a[i + 5]; r6 += a[i + 6]; r7 += a[i + 7];
        }
        double res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7));
        for (; i < n; i++) res += a[i];
        return res;
    }
    i64 n2 = n / 2;
    n2 -= n2 % 8;
    return rr_pairwise(a, n2) + rr_pairwise(a + n2, n - n2);
}
"""

_SIG = "(const u64 *b, const i64 *m, i64 lo, i64 hi)"
_CDEF = ("void {name}(const unsigned long long *, const long long *, "
         "long long, long long);")


# ---------------------------------------------------------------------------
# Numeric capability probe
# ---------------------------------------------------------------------------
_CAPS: Optional[frozenset] = None
_CAPS_LOCK = threading.Lock()

_PROBE_SRC = r"""
void p_pair(const double *a, double *o, const i64 *ns, i64 k) {
    i64 off = 0;
    for (i64 j = 0; j < k; j++) { o[j] = rr_pairwise(a + off, ns[j]); off += ns[j]; }
}
void p_max2(const double *a, const double *b, double *o, i64 n) {
    for (i64 i = 0; i < n; i++) o[i] = rr_max(a[i], b[i]);
}
void p_maxflat(const double *a, double *o, i64 n) {
    double acc = -INFINITY;
    for (i64 i = 0; i < n; i++) acc = rr_max(acc, a[i]);
    *o = acc;
}
void p_unary(const double *a, double *o, i64 n, i64 which) {
    for (i64 i = 0; i < n; i++) {
        double v = a[i];
        o[i] = which == 0 ? exp(v) : which == 1 ? log(v)
             : which == 2 ? tanh(v) : which == 3 ? sqrt(v)
             : which == 4 ? fabs(v) : rr_sign(v);
    }
}
"""

_PROBE_DECLS = [
    "void p_pair(const double *, double *, const long long *, long long);",
    "void p_max2(const double *, const double *, double *, long long);",
    "void p_maxflat(const double *, double *, long long);",
    "void p_unary(const double *, double *, long long, long long);",
]


def _numeric_caps() -> Optional[frozenset]:
    """Which render rules are bitwise-equal to numpy on this platform.

    Compiles a probe translation unit built from the same helpers the
    kernels use and fuzz-compares each risky rule against numpy,
    byte-for-byte, across sizes that straddle every pairwise-summation
    threshold and an adversarial NaN/±0/inf vector. Returns ``None``
    when no toolchain exists; an empty-ish set merely shrinks coverage
    (unrenderable groups run the numpy closures instead).
    """
    global _CAPS
    if _CAPS is not None:
        return _CAPS
    with _CAPS_LOCK:
        if _CAPS is not None:
            return _CAPS
        loaded = ctoolchain.load(_HEADER + _PROBE_SRC, _PROBE_DECLS)
        if loaded is None:
            return None
        ffi, lib = loaded

        def dptr(a):
            return ffi.cast("double *", a.ctypes.data)

        rng = np.random.default_rng(20260807)
        sizes = [0, 1, 3, 5, 7, 8, 9, 16, 31, 100, 127, 128, 129, 130,
                 256, 1000, 1023, 4096, 65536, 100001]
        adversarial = np.array(
            [0.0, -0.0, np.nan, np.inf, -np.inf, 1.0, -1.0,
             5e-324, -5e-324, 1e308, -1e308, 2.0, -2.0, 0.5, -0.5, 3.0]
        )
        caps = set()

        data = rng.standard_normal(sum(sizes)) * 10.0
        ns = np.array(sizes, dtype=np.int64)
        got = np.empty(len(sizes))
        lib.p_pair(dptr(data), dptr(got), ffi.cast("long long *", ns.ctypes.data),
                   len(sizes))
        want, off = [], 0
        for n in sizes:
            want.append(data[off:off + n].sum())
            off += n
        want_arr = np.array(want)
        mean_ok = all(
            data[o:o + n].mean() == data[o:o + n].sum() / n
            for o, n in ((sum(sizes[:j]), sizes[j])
                         for j in range(len(sizes))) if n
        )
        if got.tobytes() == want_arr.tobytes() and mean_ok:
            caps.add("pairwise")

        a = np.concatenate([rng.standard_normal(509), adversarial,
                            adversarial[::-1]])
        b = np.concatenate([rng.standard_normal(509),
                            np.repeat(adversarial, 2)[:32]])
        got = np.empty(a.size)
        lib.p_max2(dptr(a), dptr(b), dptr(got), a.size)
        flat_ok = True
        for vec in (a, b, np.concatenate([adversarial, rng.standard_normal(97)])):
            out1 = np.empty(1)
            lib.p_maxflat(dptr(vec), dptr(out1), vec.size)
            if out1.tobytes() != np.array([np.max(vec)]).tobytes():
                flat_ok = False
        if got.tobytes() == np.maximum(a, b).tobytes() and flat_ok:
            caps.add("maximum")

        unary_ref = {0: np.exp, 1: np.log, 2: np.tanh, 3: np.sqrt,
                     4: np.absolute, 5: np.sign}
        unary_name = {0: "exp", 1: "log", 2: "tanh", 3: "sqrt",
                      4: "abs", 5: "sign"}
        base = np.concatenate([rng.standard_normal(997) * 3.0, adversarial])
        for which, ref in unary_ref.items():
            x = np.abs(base) + 1e-12 if which == 1 else base
            got = np.empty(x.size)
            with np.errstate(all="ignore"):
                expect = ref(x)
            lib.p_unary(dptr(x), dptr(got), x.size, which)
            if got.tobytes() == expect.tobytes():
                caps.add(unary_name[which])

        _CAPS = frozenset(caps)
        return _CAPS


def reset_caps_cache() -> None:
    """Forget the probed capability set (tests only)."""
    global _CAPS
    with _CAPS_LOCK:
        _CAPS = None


def available() -> bool:
    """True when the toolchain probe succeeded (registry gate)."""
    return ctoolchain.available()


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------
class _Spec:
    """One rendered kernel: source plus the runtime binding recipe.

    Kernels address their operands through a *plan-wide* pointer table:
    ``b[slot]`` is the data pointer of value slot ``slot`` (the plan
    order index), shared by every kernel of the translation unit. Only
    slots whose strides are unknowable at render time (views, bound
    input buffers) read strides from the shared ``m`` table; everything
    else — plan-owned temps, scheduler-allocated outputs — is provably
    C-contiguous, so its strides are baked into the source as literals.
    """

    __slots__ = ("name", "source", "decl", "out_idx", "nrows",
                 "tileable", "total_elems", "ext_idxs")

    def __init__(self, name, source, out_idx, nrows,
                 tileable, total_elems, ext_idxs):
        self.name = name
        self.source = source
        self.decl = _CDEF.format(name=name)
        self.out_idx = out_idx
        self.nrows = nrows
        self.tileable = tileable
        self.total_elems = total_elems
        self.ext_idxs = ext_idxs


class _Unrenderable(Exception):
    """Internal control flow: this group stays on the numpy closures."""


def _ctype(dtype) -> str:
    s = dtype.str
    if s == _F8:
        return "double"
    if s == _B1:
        return "unsigned char"
    if s == _I8:
        return "i64"
    raise _Unrenderable(f"dtype {s}")


def _clit(v: float) -> str:
    v = float(v)
    if v != v:
        return "NAN"
    if v == math.inf:
        return "INFINITY"
    if v == -math.inf:
        return "(-INFINITY)"
    return v.hex()  # C99 hex float: exact by construction


def _flat_index(tokens: Sequence[str], shape: Tuple[int, ...]) -> str:
    """Row-major offset expression for baked (contiguous) storage."""
    terms = []
    stride = 1
    for d in range(len(shape) - 1, -1, -1):
        tok = tokens[d]
        if shape[d] != 1 and tok != "0":
            terms.append(tok if stride == 1 else f"{tok} * {stride}")
        stride *= shape[d]
    terms.reverse()
    return " + ".join(terms) if terms else "0"


def _provably_contiguous(node) -> bool:
    """True when this slot's runtime array is C-contiguous by construction.

    Non-view slots are filled by the scheduler with pooled or fresh
    ``np.empty`` buffers ("out"-mode kernels) or by kernels whose numpy
    implementation returns a freshly allocated contiguous result ("set"
    mode) — with one exception: ``getitem_obj`` assigns whatever
    ``a[key]`` returns, which numpy may hand back as a strided view for
    some key shapes. Bound input buffers and views carry
    caller-controlled strides and must be described at bind time.
    """
    return (node.kind != KIND_VIEW and node.buffer is None
            and node.op != "getitem_obj")


def _project(tokens: Sequence[str], cshape: Tuple[int, ...],
             sshape: Tuple[int, ...]) -> Tuple[str, ...]:
    """Right-aligned broadcast projection of consumer loop tokens."""
    k = len(cshape) - len(sshape)
    if k < 0:
        raise _Unrenderable("source outranks consumer")
    return tuple(
        "0" if sshape[d] == 1 else tokens[d + k] for d in range(len(sshape))
    )


class _GroupRenderer:
    """Renders one fused group into one C function."""

    def __init__(self, order, index, members, name, caps, strides):
        self.order = order
        self.index = index
        self.members = sorted(members)          # ascending topo
        self.root = max(members)
        self.in_group = set(members)
        self.name = name
        self.caps = caps
        # external slots this kernel reads (plan order indices)
        self.ext_slots: set = set()
        # (order idx, dim) -> meta offset; shared across the whole TU so
        # every kernel reading the same strided slot agrees on offsets
        self.strides = strides
        self.used_strides: set = set()          # (i, d) this kernel reads
        self.decls: List[str] = []              # function-scope arrays
        self.local_bytes = 0
        self.emitted_nests: List[str] = []
        self.reduce_done: set = set()

    # -- registration helpers ------------------------------------------------
    def _ext_load(self, i: int, tokens: Sequence[str]) -> str:
        node = self.order[i]
        self.ext_slots.add(i)
        if _provably_contiguous(node):
            return f"p{i}[{_flat_index(tokens, node.shape)}]"
        terms = []
        for d, tok in enumerate(tokens):
            if node.shape[d] == 1 or tok == "0":
                continue  # broadcast dim: offset contribution is zero
            self.strides.setdefault((i, d), len(self.strides))
            self.used_strides.add((i, d))
            terms.append(f"{tok} * s{i}_{d}")
        idx = " + ".join(terms) if terms else "0"
        return f"p{i}[{idx}]"

    def _local(self, decl: str, nbytes: int) -> None:
        self.local_bytes += nbytes
        if self.local_bytes > LOCAL_BYTES_CAP:
            raise _Unrenderable("local buffers exceed cap")
        self.decls.append(decl)

    # -- expression tree -----------------------------------------------------
    def _gen(self, node, tokens, body: List[str]) -> str:
        """Emit statements for the subtree of ``node`` into ``body``.

        Returns the C expression (a scalar temporary, load, or literal)
        for ``node``'s value at the loop position ``tokens``.
        """
        i = self.index[id(node)]
        if i not in self.in_group:
            return self._ext_load(i, tokens)
        if self.order[i].kind == KIND_REDUCE:
            # an inner reduce, already materialized into its local array
            # (nests emit in ascending topo order, so it exists by now)
            return f"a{i}[{_flat_index(tokens, node.shape)}]"
        return self._gen_ew(i, tokens, body)

    def _operand(self, node, src, tokens, body) -> str:
        stoks = _project(tokens, node.shape, src.shape)
        return self._gen(src, stoks, body)

    def _gen_ew(self, i, tokens, body: List[str]) -> str:
        node = self.order[i]
        op, arg = node.op, node.arg
        caps = self.caps

        def operand(k):
            return self._operand(node, node.srcs[k], tokens, body)

        if op in ("add", "sub", "mul", "div", "maximum", "eq"):
            if op == "maximum" and "maximum" not in caps:
                raise _Unrenderable("maximum")
            if arg is None:
                a, b = operand(0), operand(1)
            elif arg[0] == "sr":
                a, b = operand(0), _clit(arg[1])
            else:
                a, b = _clit(arg[1]), operand(0)
            sym = {"add": "+", "sub": "-", "mul": "*", "div": "/"}.get(op)
            if op == "maximum":
                expr = f"rr_max({a}, {b})"
            elif op == "eq":
                expr = f"(unsigned char)({a} == {b})"
            else:
                expr = f"({a} {sym} {b})"
        elif op in ("neg", "abs", "sqrt", "sign", "exp", "log", "tanh"):
            if op != "neg" and op not in caps:
                raise _Unrenderable(op)
            a = operand(0)
            expr = {
                "neg": f"(-{a})", "abs": f"fabs({a})", "sqrt": f"sqrt({a})",
                "sign": f"rr_sign({a})", "exp": f"exp({a})",
                "log": f"log({a})", "tanh": f"tanh({a})",
            }[op]
        elif op == "gt0":
            expr = f"(unsigned char)({operand(0)} > 0.0)"
        elif op == "isinf":
            expr = f"(unsigned char)(isinf({operand(0)}) != 0)"
        elif op == "not":
            expr = f"(unsigned char)(!{operand(0)})"
        elif op == "cast":
            expr = f"((double){operand(0)})"
        elif op == "pow":
            # Mirror ndarray ** fast paths (square / reciprocal / sqrt);
            # the generic pow loop is not provably equal to libm pow.
            e = float(arg[1])
            a = operand(0)
            if e == 2.0:
                expr = f"({a} * {a})"
            elif e == -1.0:
                expr = f"(1.0 / {a})"
            elif e == 0.5:
                if "sqrt" not in caps:
                    raise _Unrenderable("pow 0.5")
                expr = f"sqrt({a})"
            elif e == 1.0:
                expr = f"({a})"
            elif e == 0.0:
                expr = "1.0"
            else:
                raise _Unrenderable(f"pow {e}")
        elif op == "where":
            _, const_a, const_b = arg
            c = operand(0)
            k = 1
            if const_a is None:
                a = operand(k)
                k += 1
            else:
                a = _clit(const_a)
            b = operand(k) if const_b is None else _clit(const_b)
            expr = f"({c} ? {a} : {b})"
        elif op == "expand":
            rshape, target = arg
            rp = (1,) * (len(target) - len(rshape)) + tuple(rshape)
            src = node.srcs[0]
            if tuple(d for d in rp if d != 1) != tuple(
                d for d in src.shape if d != 1
            ):
                raise _Unrenderable("expand reshapes data")
            collected = iter(
                tokens[d] for d in range(len(rp)) if rp[d] != 1
            )
            stoks = tuple(
                "0" if d == 1 else next(collected) for d in src.shape
            )
            return self._gen(src, stoks, body)
        elif op in ("sum", "mean", "max"):
            raise _Unrenderable("unsupported reduce position")
        else:
            raise _Unrenderable(op)

        ct = _ctype(node.dtype)
        body.append(f"{ct} t{i} = {expr};")
        return f"t{i}"

    # -- reduce nests --------------------------------------------------------
    def _reduce_layout(self, node):
        """Classify a reduce: ('full'|'rows'|'cols'), input shape."""
        src_shape = node.srcs[0].shape
        axis, _keep = node.arg
        ndim = len(src_shape)
        if axis is None:
            axes = set(range(ndim))
        else:
            raw = axis if isinstance(axis, tuple) else (axis,)
            axes = {a % ndim for a in raw}
        if ndim == 0 or axes == set(range(ndim)):
            return "full", src_shape
        if ndim == 2 and axes == {1}:
            return "rows", src_shape
        if ndim == 2 and axes == {0}:
            return "cols", src_shape
        raise _Unrenderable(f"reduce layout {src_shape} axis={axis}")

    def _emit_reduce(self, i, target: Optional[str], tile: bool) -> bool:
        """Emit the loop nest for reduce member ``i``.

        ``target`` is a C lvalue prefix (``"po"`` for the root output)
        or ``None`` to materialize into a local array ``a{i}``. Returns
        True when the nest's outer loop honours ``lo``/``hi``.
        """
        node = self.order[i]
        op = node.op
        if op in ("sum", "mean") and "pairwise" not in self.caps:
            raise _Unrenderable("pairwise")
        if op == "max" and "maximum" not in self.caps:
            raise _Unrenderable("maximum")
        layout, rs = self._reduce_layout(node)
        if op == "max" and any(d == 0 for d in rs):
            raise _Unrenderable("max of empty")
        src = node.srcs[0]
        if src.dtype.str != _F8:
            raise _Unrenderable("non-f8 reduce input")
        if (
            op in ("sum", "mean")
            and self.index[id(src)] not in self.in_group
            and not _provably_contiguous(src)
        ):
            # numpy picks its summation order from the operand's memory
            # layout (pairwise along whichever axis is contiguous), and
            # input-slot contiguity is not part of the plan key — only
            # group-internal values and plan-owned temps (always fresh
            # ``np.empty``) are provably C-contiguous. Max reduces are
            # plain folds, which are order-insensitive for real data.
            raise _Unrenderable("sum over possibly-strided external")
        out_size = max(1, math.prod(node.shape)) if node.shape else 1
        if target is None:
            self._local(f"double a{i}[{out_size}];", 8 * out_size)
            dest = f"a{i}"
        else:
            dest = target
        lines: List[str] = []
        w = lines.append

        def chain(tokens, body):
            # tokens iterate rs == src.shape, so the projection is the
            # identity; _gen handles members, loads, and inner reduces.
            return self._gen(src, tokens, body)

        if layout == "full":
            n = max(1, math.prod(rs)) if rs else 1
            if math.prod(rs) == 0:
                n = 0
            if op in ("sum", "mean"):
                self._local(f"double rb{i}[{max(1, n)}];", 8 * max(1, n))
                body: List[str] = []
                expr = chain(tuple(f"x{d}" for d in range(len(rs))), body)
                flat = _flat_index(tuple(f"x{d}" for d in range(len(rs))), rs)
                w("{")
                for d, dim in enumerate(rs):
                    w(f"for (i64 x{d} = 0; x{d} < {dim}; x{d}++) {{")
                lines.extend(body)
                w(f"rb{i}[{flat}] = {expr};")
                for _ in rs:
                    w("}")
                divisor = f" / (double){n}" if op == "mean" else ""
                w(f"{dest}[0] = rr_pairwise(rb{i}, {n}){divisor};")
                w("}")
            else:  # max: sequential fold from -inf (== init-from-first)
                body = []
                expr = chain(tuple(f"x{d}" for d in range(len(rs))), body)
                w("{")
                w("double acc = -INFINITY;")
                for d, dim in enumerate(rs):
                    w(f"for (i64 x{d} = 0; x{d} < {dim}; x{d}++) {{")
                lines.extend(body)
                w(f"acc = rr_max(acc, {expr});")
                for _ in rs:
                    w("}")
                w(f"{dest}[0] = acc;")
                w("}")
            self.emitted_nests.append("\n".join(lines))
            return False

        nrows, ncols = rs
        if layout == "rows":
            lo = "lo" if tile else "0"
            hi = "hi" if tile else str(nrows)
            w("{")
            if op in ("sum", "mean"):
                self._local(f"double rb{i}[{max(1, ncols)}];",
                            8 * max(1, ncols))
                body = []
                expr = chain(("x0", "x1"), body)
                w(f"for (i64 x0 = {lo}; x0 < {hi}; x0++) {{")
                w(f"for (i64 x1 = 0; x1 < {ncols}; x1++) {{")
                lines.extend(body)
                w(f"rb{i}[x1] = {expr};")
                w("}")
                divisor = f" / (double){ncols}" if op == "mean" else ""
                w(f"{dest}[x0] = rr_pairwise(rb{i}, {ncols}){divisor};")
                w("}")
            else:
                body = []
                expr = chain(("x0", "x1"), body)
                w(f"for (i64 x0 = {lo}; x0 < {hi}; x0++) {{")
                w("double acc = -INFINITY;")
                w(f"for (i64 x1 = 0; x1 < {ncols}; x1++) {{")
                lines.extend(body)
                w(f"acc = rr_max(acc, {expr});")
                w("}")
                w(f"{dest}[x0] = acc;")
                w("}")
            w("}")
            self.emitted_nests.append("\n".join(lines))
            return tile

        # layout == "cols": numpy accumulates row 0 as a copy, then adds
        # (or max-folds) each later row — replay that exact order.
        w("{")
        body0: List[str] = []
        expr0 = chain(("0", "x1"), body0)
        w(f"for (i64 x1 = 0; x1 < {ncols}; x1++) {{")
        lines.extend(body0)
        w(f"{dest}[x1] = {expr0};")
        w("}")
        body1: List[str] = []
        expr1 = chain(("x0", "x1"), body1)
        w(f"for (i64 x0 = 1; x0 < {nrows}; x0++) {{")
        w(f"for (i64 x1 = 0; x1 < {ncols}; x1++) {{")
        lines.extend(body1)
        if op == "max":
            w(f"{dest}[x1] = rr_max({dest}[x1], {expr1});")
        else:
            w(f"{dest}[x1] = {dest}[x1] + {expr1};")
        w("}")
        w("}")
        if op == "mean":
            w(f"for (i64 x1 = 0; x1 < {ncols}; x1++) "
              f"{dest}[x1] = {dest}[x1] / (double){nrows};")
        w("}")
        self.emitted_nests.append("\n".join(lines))
        return False

    # -- driver --------------------------------------------------------------
    def render(self, tile_wanted: bool) -> _Spec:
        order = self.order
        root_node = order[self.root]
        for i in self.members:
            _ctype(order[i].dtype)  # dtype gate for every member
            for src in order[i].srcs:
                _ctype(src.dtype)

        reduces = [i for i in self.members
                   if order[i].kind == KIND_REDUCE and i != self.root]
        root_is_reduce = order[self.root].kind == KIND_REDUCE
        tileable = False
        nrows = 1
        for i in reduces:
            self._emit_reduce(i, target=None, tile=False)
        if root_is_reduce:
            tiled = self._emit_reduce(
                self.root, target="po",
                tile=tile_wanted and not reduces
                and self._reduce_layout(root_node)[0] == "rows",
            )
            if tiled:
                tileable = True
                nrows = root_node.srcs[0].shape[0]
        else:
            shape = root_node.shape
            toks = tuple(f"x{d}" for d in range(len(shape)))
            body: List[str] = []
            expr = self._gen_ew(self.root, toks, body)
            lines: List[str] = ["{"]
            tileable = bool(shape) and not reduces
            for d, dim in enumerate(shape):
                if d == 0 and tileable:
                    lines.append("for (i64 x0 = lo; x0 < hi; x0++) {")
                    nrows = dim
                else:
                    lines.append(f"for (i64 x{d} = 0; x{d} < {dim}; x{d}++) {{")
            lines.extend(body)
            lines.append(f"po[{_flat_index(toks, shape)}] = {expr};")
            for _ in shape:
                lines.append("}")
            lines.append("}")
            self.emitted_nests.append("\n".join(lines))

        return self._assemble(root_node, tileable, nrows)

    def _assemble(self, root_node, tileable, nrows) -> _Spec:
        order = self.order
        ct_out = _ctype(root_node.dtype)
        # The scheduler never hands a kernel an output buffer that
        # aliases one of its own operands (operands are recycled only
        # after the output is assigned), so the write pointer is
        # restrict-qualified — without it the compiler must assume
        # every po store can clobber the source pointers and cannot
        # keep accumulators in registers or vectorize.
        prelude = [f"{ct_out} * restrict po = "
                   f"({ct_out} *)(uintptr_t)b[{self.root}];"]
        for i in sorted(self.ext_slots):
            ct = _ctype(order[i].dtype)
            prelude.append(
                f"const {ct} * const p{i} = "
                f"(const {ct} *)(uintptr_t)b[{i}];"
            )
        for i, d in sorted(self.used_strides):
            prelude.append(f"const i64 s{i}_{d} = m[{self.strides[(i, d)]}];")
        body = "\n".join(prelude + self.decls + self.emitted_nests)
        source = (f"void {self.name}{_SIG} {{\n(void)lo; (void)hi; "
                  f"(void)m;\n{body}\n}}\n")
        total = max(1, math.prod(root_node.shape)) if root_node.shape else 1
        return _Spec(
            name=self.name, source=source, out_idx=self.root,
            nrows=nrows, tileable=tileable and nrows >= 2,
            total_elems=total, ext_idxs=tuple(sorted(self.ext_slots)),
        )


# ---------------------------------------------------------------------------
# Opaque single-op kernels
# ---------------------------------------------------------------------------
def _render_opaque(order, index, root_i, name, caps, strides) -> _Spec:
    """Render a renderable OPAQUE op (its own one-op group) to C."""
    node = order[root_i]
    op, arg = node.op, node.arg
    r = _GroupRenderer(order, index, [root_i], name, caps, strides)

    def reg(src):
        i = index[id(src)]
        r.ext_slots.add(i)
        return i

    def stride(i, d):
        src = order[i]
        if _provably_contiguous(src):
            return str(math.prod(src.shape[d + 1:]))
        r.strides.setdefault((i, d), len(r.strides))
        r.used_strides.add((i, d))
        return f"s{i}_{d}"

    lines: List[str] = []
    w = lines.append

    if op == "matmul" and arg:  # batch-invariant rowwise kernel
        a, b = node.srcs
        if a.dtype.str != _F8 or b.dtype.str != _F8:
            raise _Unrenderable("matmul dtype")
        (mm, kk), (_, nn) = a.shape, b.shape
        ia = reg(a)
        ib = reg(b)
        # out[i,j] = fold_k (acc + a[i,k]*b[k,j]) from acc = 0.0 — the
        # same fixed k-order as rowwise_matmul's `out += a[:,k,None]*b[k]`.
        w(f"for (i64 i = lo; i < hi; i++) {{")
        w(f"for (i64 j = 0; j < {nn}; j++) {{")
        w("double acc = 0.0;")
        w(f"for (i64 k = 0; k < {kk}; k++) "
          f"acc = acc + p{ia}[i * {stride(ia, 0)} + k * {stride(ia, 1)}]"
          f" * p{ib}[k * {stride(ib, 0)} + j * {stride(ib, 1)}];")
        w(f"po[i * {nn} + j] = acc;")
        w("}")
        w("}")
        r.emitted_nests.append("\n".join(lines))
        return r._assemble(node, tileable=mm >= 2, nrows=mm)

    if op == "getitem_arr":
        x, idx = node.srcs
        if idx.dtype.str != _I8 or x.dtype.str != _F8:
            raise _Unrenderable("gather dtype")
        if len(idx.shape) != 1 or not 1 <= len(x.shape) <= 2:
            raise _Unrenderable("gather rank")
        rows = idx.shape[0]
        nx = x.shape[0]
        if nx == 0:
            raise _Unrenderable("gather from empty")
        cols = x.shape[1] if len(x.shape) == 2 else 1
        ix = reg(x)
        ii = reg(idx)
        w(f"for (i64 s = lo; s < hi; s++) {{")
        w(f"i64 t = p{ii}[s * {stride(ii, 0)}];")
        # np.take(mode="clip") — the reference kernel's bounds handling.
        w("if (t < 0) t = 0;")
        w(f"if (t > {nx - 1}) t = {nx - 1};")
        if len(x.shape) == 2:
            w(f"for (i64 c = 0; c < {cols}; c++) "
              f"po[s * {cols} + c] = "
              f"p{ix}[t * {stride(ix, 0)} + c * {stride(ix, 1)}];")
        else:
            w(f"po[s] = p{ix}[t * {stride(ix, 0)}];")
        w("}")
        r.emitted_nests.append("\n".join(lines))
        return r._assemble(node, tileable=rows >= 2, nrows=rows)

    if op in ("scatter_add", "putadd", "segmax_raw"):
        is_max = op == "segmax_raw"
        if is_max and "maximum" not in caps:
            raise _Unrenderable("maximum")
        if op == "scatter_add" and arg[0] not in ("ref", "bc"):
            raise _Unrenderable("csr scatter")
        if op == "putadd" and arg[0] != "arr":
            raise _Unrenderable("putadd mode")
        if op == "segmax_raw" and arg[0] != "ref":
            raise _Unrenderable("csr segmax")
        vals, idx = node.srcs
        if idx.dtype.str != _I8 or vals.dtype.str != _F8:
            raise _Unrenderable("scatter dtype")
        if len(idx.shape) != 1 or len(vals.shape) > 2:
            raise _Unrenderable("scatter rank")
        if len(vals.shape) != len(node.shape) or not node.shape:
            raise _Unrenderable("scatter layout")
        nrows_out = node.shape[0]
        cols = node.shape[1] if len(node.shape) == 2 else 1
        if len(vals.shape) == 2 and vals.shape[1] != cols:
            raise _Unrenderable("scatter broadcast")
        ev = vals.shape[0]
        iv = reg(vals)
        ii = reg(idx)
        out_size = nrows_out * cols
        init = "-INFINITY" if is_max else "0.0"
        w(f"for (i64 x = 0; x < {out_size}; x++) po[x] = {init};")
        w(f"for (i64 e = 0; e < {ev}; e++) {{")
        w(f"i64 t = p{ii}[e * {stride(ii, 0)}];")
        # np.add.at / np.maximum.at wrap negative indices; anything
        # still out of range would raise there — skip it here so an
        # invalid index can never scribble outside the buffer.
        w(f"if (t < 0) t += {nrows_out};")
        w(f"if (t < 0 || t >= {nrows_out}) continue;")
        if len(vals.shape) == 2:
            vexpr = f"p{iv}[e * {stride(iv, 0)} + c * {stride(iv, 1)}]"
            w(f"for (i64 c = 0; c < {cols}; c++) {{")
        else:
            vexpr = f"p{iv}[e * {stride(iv, 0)}]"
            w("{ i64 c = 0;")
        tgt = f"po[t * {cols} + c]"
        if is_max:
            w(f"{tgt} = rr_max({tgt}, {vexpr});")
        else:
            w(f"{tgt} = {tgt} + {vexpr};")
        w("}")
        w("}")
        r.emitted_nests.append("\n".join(lines))
        return r._assemble(node, tileable=False, nrows=1)

    raise _Unrenderable(op)


# ---------------------------------------------------------------------------
# Scheduler hook
# ---------------------------------------------------------------------------
def _counters():
    from repro.nn.realize import counters

    return counters


_TILE_POOL: Optional[ThreadPoolExecutor] = None
_TILE_LOCK = threading.Lock()


def _tile_pool() -> ThreadPoolExecutor:
    global _TILE_POOL
    if _TILE_POOL is None:
        with _TILE_LOCK:
            if _TILE_POOL is None:
                workers = max(2, min(8, os.cpu_count() or 1))
                _TILE_POOL = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="repro-tile"
                )
    return _TILE_POOL


#: Per-slot pointer memo entries; bounds how many stale arrays a memo
#: can pin (entries hold the array to keep its id from being reused).
_SLOT_MEMO_CAP = 8


class _KernelSet:
    """Per-plan binding state shared by every kernel of one plan.

    One pointer table (indexed by plan order index) and one stride table
    serve the whole translation unit, so a slot produced by one kernel
    and consumed by three others is bound exactly once. ``bound``
    identity-caches the array object last bound per slot: plans replay
    with the same pooled temporaries in the same slots, so steady-state
    binding is an identity check for everything except freshly
    allocated escape buffers and per-batch inputs. A second-level
    per-slot memo (``memos``) catches inputs that *cycle* — cached
    batches rebind the same few arrays every epoch — so only genuinely
    new arrays pay the pointer extraction. Memo entries hold the array
    object itself: the identity check is exact and the held reference
    pins the id against reuse at a stale address.
    """

    __slots__ = ("ffi", "table", "meta", "bound", "memos")

    def __init__(self, ffi, nslots: int, meta_len: int):
        self.ffi = ffi
        self.table = ffi.new("unsigned long long[]", max(1, nslots))
        self.meta = ffi.new("long long[]", max(1, meta_len))
        self.bound: List[object] = [None] * max(1, nslots)
        self.memos: Dict[int, dict] = {}


def _make_bind(kset: _KernelSet, bind_slots: Sequence[int],
               slot_fills: Dict[int, Tuple[Tuple[int, int], ...]],
               fast_slots):
    """Binder closure for ``bind_slots``: refresh table/meta from ``V``.

    ``fast_slots`` holds the provably-contiguous slots, whose pointer is
    extracted through ``ffi.from_buffer`` (~2x cheaper than
    ``ndarray.ctypes.data``, but it rejects non-contiguous views — which
    only the slow slots can carry).
    """
    ffi = kset.ffi
    cast, from_buffer = ffi.cast, ffi.from_buffer
    table, meta, bound, memos = (kset.table, kset.meta, kset.bound,
                                 kset.memos)
    binds = tuple(
        (slot, slot_fills.get(slot, ()), memos.setdefault(slot, {}),
         slot in fast_slots)
        for slot in bind_slots
    )

    def bind(V):
        for slot, fills, memo, fast in binds:
            a = V[slot]
            if a is bound[slot]:
                continue
            bound[slot] = a
            hit = memo.get(id(a))
            if hit is not None and hit[0] is a:
                table[slot] = hit[1]
                for off, st in hit[2]:
                    meta[off] = st
                continue
            if fast:
                ptr = int(cast("unsigned long long", from_buffer(a)))
            else:
                ptr = a.ctypes.data
            isz = a.itemsize
            svals = tuple((off, a.strides[d] // isz) for off, d in fills)
            if len(memo) >= _SLOT_MEMO_CAP:
                memo.clear()
            memo[id(a)] = (a, ptr, svals)
            table[slot] = ptr
            for off, st in svals:
                meta[off] = st

    return bind


def _make_runner(kset: _KernelSet, lib, spec: _Spec, tile: bool,
                 slot_fills: Dict[int, Tuple[Tuple[int, int], ...]],
                 fast_slots):
    fn = getattr(lib, spec.name)
    table, meta = kset.table, kset.meta
    bind = _make_bind(kset, (*spec.ext_idxs, spec.out_idx), slot_fills,
                      fast_slots)
    nrows = spec.nrows

    if tile and spec.tileable and spec.total_elems >= TILE_MIN_ELEMS:
        pool = _tile_pool()
        workers = pool._max_workers
        step = -(-nrows // workers)
        spans = [(lo, min(lo + step, nrows))
                 for lo in range(0, nrows, step)]

        def run(V):
            bind(V)
            futures = [pool.submit(fn, table, meta, lo, hi)
                       for lo, hi in spans]
            for future in futures:
                future.result()

        return run

    def run(V):
        bind(V)
        fn(table, meta, 0, nrows)

    return run


def compile_groups(order, index, groups, group_of, consumers, is_input,
                   tile: bool = False):
    """Render every renderable fused group of one plan into C kernels.

    Called by the scheduler after fusion grouping. Returns
    ``{root_order_index: (run, ext_source_indices)}`` for the groups
    that rendered; every other group keeps its per-op numpy closures.
    Adjacent compiled kernels — rendered roots with nothing but inputs
    and in-group members between them in plan order — are *stitched*
    into one C driver function, so a run of k kernels costs one bind
    and one foreign call instead of k: the run's final root maps to the
    driver and the earlier roots map to ``(None, ext_idxs)``, which
    tells the scheduler to allocate their output slots and record their
    reads (keeping buffer recycling exactly as tight as unstitched
    execution) but emit no instruction. Failure anywhere (no toolchain,
    compile error) returns ``{}`` — the plan still executes,
    uncompiled.
    """
    if not ctoolchain.available():
        return {}
    caps = _numeric_caps()
    if caps is None:
        return {}

    # TU-wide (slot, dim) -> stride-table offset. Renderers that later
    # fail _Unrenderable may leave dead offsets behind; those are never
    # read, they just pad the table.
    strides: Dict[Tuple[int, int], int] = {}
    specs: List[Tuple[int, _Spec]] = []
    silent = set()          # in-group members of rendered groups
    for members in groups:
        root_i = max(members)
        node = order[root_i]
        kind = node.kind
        if kind == KIND_VIEW:
            continue
        name = f"k{len(specs)}"
        try:
            if kind == KIND_OPAQUE:
                spec = _render_opaque(order, index, root_i, name, caps,
                                      strides)
            elif kind in (KIND_EW, KIND_REDUCE):
                spec = _GroupRenderer(
                    order, index, members, name, caps, strides
                ).render(tile_wanted=tile)
            else:  # pragma: no cover - buffers are never group roots
                continue
        except _Unrenderable:
            continue
        specs.append((root_i, spec))
        silent.update(m for m in members if m != root_i)

    if not specs:
        return {}

    # --- stitch adjacent kernels into driver functions. Kernels that
    # the threaded variant will tile across the pool stay standalone.
    spec_by_root = dict(specs)
    pool_tiled = set()
    if tile:
        pool_tiled = {r for r, s in specs
                      if s.tileable and s.total_elems >= TILE_MIN_ELEMS}
    runs: List[List[int]] = []
    prev = None
    for r in sorted(spec_by_root):
        if r in pool_tiled:
            prev = None
            continue
        if prev is not None and all(
            j in silent or is_input[j] for j in range(prev + 1, r)
        ):
            runs[-1].append(r)
        else:
            runs.append([r])
        prev = r

    driver_sources: List[str] = []
    driver_decls: List[str] = []
    drivers: List[Tuple[List[int], str]] = []
    for members in runs:
        if len(members) < 2:
            continue
        name = f"d{len(drivers)}"
        calls = "\n".join(
            f"{spec_by_root[r].name}(b, m, 0, {spec_by_root[r].nrows});"
            for r in members
        )
        driver_sources.append(
            f"void {name}{_SIG} {{\n(void)lo; (void)hi;\n{calls}\n}}\n"
        )
        driver_decls.append(_CDEF.format(name=name))
        drivers.append((members, name))

    source = _HEADER + "\n".join(
        [spec.source for _, spec in specs] + driver_sources
    )
    decls = [spec.decl for _, spec in specs] + driver_decls
    loaded = ctoolchain.load(source, decls)
    if loaded is None:
        return {}
    ffi, lib = loaded
    _counters().compiled_kernels += len(specs)
    slot_fills: Dict[int, Tuple[Tuple[int, int], ...]] = {}
    for slot in {i for i, _d in strides}:
        slot_fills[slot] = tuple(sorted(
            (off, d) for (i, d), off in strides.items() if i == slot
        ))
    fast_slots = {i for i, node in enumerate(order)
                  if _provably_contiguous(node)}
    kset = _KernelSet(ffi, len(order), len(strides))

    result = {}
    stitched = set()
    for members, name in drivers:
        stitched.update(members)
        ext_union = sorted({
            e for r in members for e in spec_by_root[r].ext_idxs
        })
        bind_slots = sorted({*ext_union, *members})
        fn = getattr(lib, name)
        bind = _make_bind(kset, bind_slots, slot_fills, fast_slots)
        table, meta = kset.table, kset.meta

        def run(V, bind=bind, fn=fn, table=table, meta=meta):
            bind(V)
            fn(table, meta, 0, 0)

        # Each member reports its external reads at its *own* plan
        # position so buffer recycling stays exactly as tight as
        # unstitched execution. This is safe: between members only
        # fused in-group nodes and inputs exist, and the driver runs
        # its kernels in plan order, so any slot the pool hands from a
        # member's source to a later member's output is read before it
        # is overwritten.
        for r in members[:-1]:
            result[r] = (None, spec_by_root[r].ext_idxs)
        result[members[-1]] = (run, spec_by_root[members[-1]].ext_idxs)
    for root_i, spec in specs:
        if root_i not in stitched:
            result[root_i] = (
                _make_runner(kset, lib, spec, tile, slot_fills, fast_slots),
                spec.ext_idxs,
            )
    return result
