"""Reference numpy kernels for the lazy tensor engine.

Every kernel replays the *exact* numpy call the eager path makes for
the same op — same ufunc, same operand order, same scalar handling —
which is what upholds the bitwise eager-vs-lazy equivalence contract
(``tests/test_nn_lazy_equivalence.py``). Two deliberate details:

- Elementwise ufuncs write into scheduler-provided output buffers
  (``out=``). A ufunc's inner loop is identical with and without
  ``out=``, so reusing plan-owned buffers changes allocation, never
  bits.
- ``pow`` uses the python ``**`` operator rather than ``np.power``:
  ndarray ``**`` fast-paths exponents like ``2`` and ``-1.0`` through
  ``np.square`` / ``np.reciprocal``, whose results can differ in the
  last ulp from the generic ``pow`` loop. The eager path goes through
  ``**``, so the kernel must too.

``build_instr`` compiles one :class:`~repro.nn.lazyir.LazyNode` into a
closure ``run(V)`` over the plan's flat value-slot list ``V``; source
and output positions are baked in as integer indices, so the executor's
only per-call work is the closure call itself. ``build_view`` compiles
view nodes into stride tricks. This module is the reference
implementation of the backend seam (:mod:`repro.nn.backends`).
"""

from __future__ import annotations

import numpy as np

from repro.nn.lazyir import thaw_key


def rowwise_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a @ b`` via k-ordered outer-product accumulation.

    Each output row is built by the same fixed-order sequence of fused
    multiply-adds no matter how many rows ``a`` has, so results for a row
    never depend on the rest of the batch. Intended for the small inner
    dimensions of inference (k <= 64); training keeps BLAS gemm.
    """
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.float64)
    for k in range(b.shape[0]):
        out += a[:, k, None] * b[k]
    return out


# ---------------------------------------------------------------------------
# Flattened scatter indices, memoized on index-array identity
# ---------------------------------------------------------------------------
# The bincount scatter flattens ``out[index[i], j] += v[i, j]`` into
# one 1-D bincount over ``index[:, None] * cols + arange(cols)``. That
# flat index is a pure function of ``(index, cols)``, and graph
# topology arrays are immutable by contract once a batch is built — so
# with cached batch assembly the same index objects recur every epoch
# and the flattening can be computed once per array instead of once
# per scatter call. Entries hold the index array itself: the identity
# check is exact and the held reference pins the id against reuse.
_FLAT_INDEX_CACHE: dict = {}
_FLAT_INDEX_CAP = 256


def flat_scatter_index(index: np.ndarray, cols: int) -> np.ndarray:
    """``(index[:, None] * cols + arange(cols)).ravel()``, memoized."""
    key = (id(index), cols)
    hit = _FLAT_INDEX_CACHE.get(key)
    if hit is not None and hit[0] is index:
        return hit[1]
    flat = (index[:, None] * cols + np.arange(cols)).ravel()
    if len(_FLAT_INDEX_CACHE) >= _FLAT_INDEX_CAP:
        _FLAT_INDEX_CACHE.pop(next(iter(_FLAT_INDEX_CACHE)))
    _FLAT_INDEX_CACHE[key] = (index, flat)
    return flat


_BINARY_UFUNCS = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "div": np.true_divide,
    "maximum": np.maximum,
    "eq": np.equal,
}

_UNARY_UFUNCS = {
    "neg": np.negative,
    "exp": np.exp,
    "log": np.log,
    "sqrt": np.sqrt,
    "tanh": np.tanh,
    "abs": np.absolute,
    "sign": np.sign,
    "isinf": np.isinf,
    "not": np.invert,
}


def build_view(node):
    """Compile a VIEW node into ``fn(src_array) -> view``."""
    op = node.op
    if op == "transpose":
        return lambda a: a.T
    if op == "reshape":
        shape = node.arg
        return lambda a: a.reshape(shape)
    if op == "getitem":
        key = thaw_key(node.arg)
        return lambda a: a[key]
    raise AssertionError(f"not a view op: {op}")  # pragma: no cover


def build_instr(node, srcs, oi):
    """Compile one op node into ``(run, mode)``.

    ``srcs`` are the value-slot indices of ``node.srcs`` in the plan's
    flat slot list ``V``; ``oi`` is the output slot. ``mode`` is
    ``"out"`` when ``run`` writes into a scheduler-provided ``V[oi]``
    buffer or ``"set"`` when the kernel allocates its own result and
    assigns the slot.
    """
    op, arg = node.op, node.arg

    if op in _BINARY_UFUNCS:
        ufunc = _BINARY_UFUNCS[op]
        if arg is None:
            ia, ib = srcs

            def run(V):
                ufunc(V[ia], V[ib], out=V[oi])

        elif arg[0] == "sr":
            ia, const = srcs[0], arg[1]

            def run(V):
                ufunc(V[ia], const, out=V[oi])

        else:  # scalar-left
            ib, const = srcs[0], arg[1]

            def run(V):
                ufunc(const, V[ib], out=V[oi])

        return run, "out"

    if op in _UNARY_UFUNCS:
        ufunc, ia = _UNARY_UFUNCS[op], srcs[0]

        def run(V):
            ufunc(V[ia], out=V[oi])

        return run, "out"

    if op == "pow":
        # Always scalar exponent (the tensor layer rejects the rest);
        # "set" mode so the ** fast paths stay on the eager codepath.
        ia, exponent = srcs[0], arg[1]

        def run(V):
            V[oi] = V[ia] ** exponent

        return run, "set"

    if op == "gt0":
        ia = srcs[0]

        def run(V):
            np.greater(V[ia], 0, out=V[oi])

        return run, "out"

    if op == "cast":
        ia = srcs[0]

        def run(V):
            np.copyto(V[oi], V[ia])

        return run, "out"

    if op == "expand":
        ia = srcs[0]
        rshape, tshape = arg

        def run(V):
            np.copyto(V[oi], np.broadcast_to(V[ia].reshape(rshape), tshape))

        return run, "out"

    if op == "where":
        _, const_a, const_b = arg
        rest = list(srcs[1:])
        ic = srcs[0]
        ia = rest.pop(0) if const_a is None else None
        ib = rest.pop(0) if const_b is None else None

        def run(V):
            a = const_a if ia is None else V[ia]
            b = const_b if ib is None else V[ib]
            V[oi] = np.where(V[ic], a, b)

        return run, "set"

    if op in ("sum", "mean", "max"):
        # Reductions write into the preallocated output: ndarray.sum /
        # mean / max with ``out=`` run the same ``ufunc.reduce`` inner
        # loop as the allocating call, so the bits don't change — only
        # the per-call temporary goes away.
        ia = srcs[0]
        axis, keepdims = arg
        method = {"sum": "sum", "mean": "mean", "max": "max"}[op]

        def run(V):
            getattr(V[ia], method)(axis=axis, keepdims=keepdims, out=V[oi])

        return run, "out"

    if op == "matmul":
        ia, ib = srcs
        if arg:  # batch-invariant flag captured at record time

            def run(V):
                V[oi] = rowwise_matmul(V[ia], V[ib])

            return run, "set"

        # np.matmul(out=) dispatches the identical gemm call as ``@``.
        def run(V):
            np.matmul(V[ia], V[ib], out=V[oi])

        return run, "out"

    if op == "matmul_nt":
        ia, ib = srcs

        def run(V):
            np.matmul(V[ia], V[ib].T, out=V[oi])

        return run, "out"

    if op == "matmul_tn":
        ia, ib = srcs

        def run(V):
            np.matmul(V[ia].T, V[ib], out=V[oi])

        return run, "out"

    if op == "getitem_arr":
        # Row gather via np.take(out=): a pure index copy, bitwise
        # identical to ``a[index]``, without the per-call result array.
        # mode="clip" skips the buffered bounds-checking path (2-3x
        # slower with ``out=``); the tensor layer validated the index
        # at record time, so clipping never actually fires.
        ia, ii = srcs

        def run(V):
            np.take(V[ia], V[ii], axis=0, out=V[oi], mode="clip")

        return run, "out"

    if op == "getitem_obj":
        ia, key = srcs[0], arg[1]

        def run(V):
            V[oi] = V[ia][key]

        return run, "set"

    if op == "putadd":
        # ``fill(0)`` then ``add.at`` into the preallocated output —
        # same zeros, same accumulation order as the allocating form.
        mode = arg[0]
        if mode == "arr":
            ig, ii = srcs

            def run(V):
                out = V[oi]
                out.fill(0.0)
                np.add.at(out, V[ii], V[ig])

        else:  # "basic" / "obj"
            ig = srcs[0]
            key = thaw_key(arg[1]) if mode == "basic" else arg[1]

            def run(V):
                out = V[oi]
                out.fill(0.0)
                np.add.at(out, key, V[ig])

        return run, "out"

    if op == "concat":
        axis = arg

        def run(V):
            np.concatenate([V[i] for i in srcs], axis=axis, out=V[oi])

        return run, "out"

    if op == "stack":
        axis = arg

        def run(V):
            V[oi] = np.stack([V[i] for i in srcs], axis=axis)

        return run, "set"

    if op == "scatter_add":
        return _build_scatter_add(arg, srcs, oi)

    if op == "segmax_raw":
        return _build_segmax_raw(arg, srcs, oi)

    raise AssertionError(f"no kernel for op: {op}")  # pragma: no cover


def _csr_srcs(arg, srcs):
    """Split CSR operand slots: (values, perm-or-None, nonempty, starts)."""
    if arg[1]:  # has explicit permutation
        return srcs[0], srcs[1], srcs[2], srcs[3]
    return srcs[0], None, srcs[1], srcs[2]


def _build_scatter_add(arg, srcs, oi):
    mode = arg[0]
    if mode == "csr":
        iv, ip, inz, ist = _csr_srcs(arg, srcs)

        def run(V):
            values = V[iv]
            out = V[oi]
            out.fill(0.0)
            nonempty = V[inz]
            if nonempty.size:
                ordered = values if ip is None else values[V[ip]]
                out[nonempty] = np.add.reduceat(ordered, V[ist], axis=0)

        return run, "out"

    iv, ii = srcs
    shape = arg[1]
    if mode == "ref":

        def run(V):
            out = V[oi]
            out.fill(0.0)
            np.add.at(out, V[ii], V[iv])

        return run, "out"

    # bincount path: flatten trailing dims into independent bins
    # (bitwise identical to np.add.at; see segment._scatter_add).
    # bincount allocates its result internally, so this stays "set".
    if len(shape) == 1:

        def run(V):
            V[oi] = np.bincount(V[ii], weights=V[iv], minlength=shape[0])

        return run, "set"

    cols = int(np.prod(shape[1:]))
    minlength = shape[0] * cols

    def run(V):
        V[oi] = np.bincount(
            flat_scatter_index(V[ii], cols),
            weights=V[iv].reshape(-1),
            minlength=minlength,
        ).reshape(shape)

    return run, "set"


def _build_segmax_raw(arg, srcs, oi):
    mode = arg[0]
    if mode == "csr":
        iv, ip, inz, ist = _csr_srcs(arg, srcs)

        def run(V):
            values = V[iv]
            out = V[oi]
            out.fill(-np.inf)
            nonempty = V[inz]
            if nonempty.size:
                ordered = values if ip is None else values[V[ip]]
                out[nonempty] = np.maximum.reduceat(ordered, V[ist], axis=0)

        return run, "out"

    iv, ii = srcs

    def run(V):
        out = V[oi]
        out.fill(-np.inf)
        np.maximum.at(out, V[ii], V[iv])

    return run, "out"
