"""C toolchain probe, kernel compilation, and the on-disk kernel cache.

The cstyle backend renders every fused group of a realize plan into one
C translation unit; this module turns that source into callable
function pointers:

1. **Probe** — :func:`available` compiles a one-line translation unit
   the first time it is called (honouring ``$CC``) and memoizes the
   answer. No toolchain, no cffi, or a sandboxed compiler all collapse
   to ``False``, which backend selection reads as *silently fall back
   to numpy* — ``CC=/bin/false repro train --backend cstyle`` must
   behave exactly like ``--backend numpy``.
2. **Cache** — compiled shared objects live under
   :func:`cache_dir` (``$REPRO_KERNEL_CACHE`` or
   ``~/.cache/repro-kernels``), keyed by the sha256 of the rendered
   source plus compiler flags and ABI version. The rendered source is a
   pure function of the plan's structural key (ops, args, shapes,
   topology — never values), so the file name *is* the plan's
   structural hash: a process restart, or a second process on the same
   machine, reuses the ``.so`` without invoking the compiler at all.
   Hits and misses feed ``EngineCounters.kernel_cache_hits/_misses``.
3. **Load** — each translation unit gets a fresh :class:`cffi.FFI` in
   ABI mode (``cdef`` + ``dlopen``); no setuptools, no build isolation,
   and the GIL is released for the duration of every kernel call.

Compilation is atomic (temp file + ``os.replace``) so concurrent
processes racing on the same kernel at worst compile twice, never load
a torn object.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import tempfile
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.utils.logging import get_logger

logger = get_logger(__name__)

#: Bump when the kernel ABI (signature, meta layout) changes: old cached
#: shared objects become unreachable rather than subtly wrong.
ABI_VERSION = 2

#: Flags are part of the cache key. ``-ffp-contract=off`` is
#: load-bearing: a contracted multiply-add rounds once instead of
#: twice, which would break bitwise equivalence with numpy on any
#: hardware where the compiler emits FMA. ``-O3 -march=native`` is safe
#: alongside it: without ``-ffast-math`` the vectorizer only runs
#: transforms that preserve each element's exact operation sequence
#: (lane-parallel loops and independent accumulator chains), never
#: reassociating a loop-carried reduction — so codegen level and vector
#: width cannot change results, and numpy's own kernels are dispatched
#: for the same ISA at runtime. The kernel cache is per-machine, so
#: native codegen never leaks across hosts; the flags sit in the cache
#: key, so changing them invalidates cleanly. The numeric-caps probe
#: revalidates every op bitwise under these exact flags before any
#: group is allowed to render.
CFLAGS: Tuple[str, ...] = (
    "-O3", "-march=native", "-fPIC", "-shared", "-fno-strict-aliasing",
    "-ffp-contract=off",
)

_LOCK = threading.Lock()
_TOOLCHAIN: Optional[bool] = None
#: hash -> (ffi, lib); the FFI object must stay alive with its lib.
_LOADED: Dict[str, Tuple[object, object]] = {}


def cc_command() -> str:
    """The C compiler to invoke (``$CC`` or ``cc``)."""
    return os.environ.get("CC") or "cc"


def cache_dir() -> str:
    """On-disk kernel cache root (created lazily)."""
    root = os.environ.get("REPRO_KERNEL_CACHE")
    if not root:
        base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
            os.path.expanduser("~"), ".cache"
        )
        root = os.path.join(base, "repro-kernels")
    return root


def _counters():
    from repro.nn.realize import counters

    return counters


def _compile(source: str, out_path: str) -> bool:
    """Compile ``source`` to ``out_path`` atomically; False on failure."""
    directory = os.path.dirname(out_path)
    os.makedirs(directory, exist_ok=True)
    fd, src_path = tempfile.mkstemp(suffix=".c", dir=directory)
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(source)
        fd2, tmp_so = tempfile.mkstemp(suffix=".so", dir=directory)
        os.close(fd2)
        try:
            proc = subprocess.run(
                [cc_command(), *CFLAGS, "-o", tmp_so, src_path, "-lm"],
                capture_output=True,
                timeout=120,
            )
            if proc.returncode != 0:
                logger.debug(
                    "kernel compile failed: %s",
                    proc.stderr.decode("utf-8", "replace")[:500],
                )
                return False
            os.replace(tmp_so, out_path)
            return True
        finally:
            if os.path.exists(tmp_so):
                os.unlink(tmp_so)
    except (OSError, subprocess.SubprocessError, ValueError) as exc:
        logger.debug("kernel compile failed: %s", exc)
        return False
    finally:
        if os.path.exists(src_path):
            os.unlink(src_path)


def available() -> bool:
    """True when cffi and a working C compiler exist (probed once)."""
    global _TOOLCHAIN
    if _TOOLCHAIN is not None:
        return _TOOLCHAIN
    with _LOCK:
        if _TOOLCHAIN is not None:
            return _TOOLCHAIN
        ok = False
        try:
            import cffi  # noqa: F401 — probe only

            with tempfile.TemporaryDirectory() as tmp:
                ok = _compile(
                    "int repro_toolchain_probe(void) { return 42; }\n",
                    os.path.join(tmp, "probe.so"),
                )
        except Exception as exc:  # noqa: BLE001 — any failure means "no"
            logger.debug("toolchain probe failed: %s", exc)
            ok = False
        if not ok:
            logger.info(
                "no usable C toolchain (CC=%s); compiled backends fall "
                "back to numpy",
                cc_command(),
            )
        _TOOLCHAIN = ok
        return ok


def reset_probe_cache() -> None:
    """Forget the toolchain probe and loaded libraries (tests only)."""
    global _TOOLCHAIN
    with _LOCK:
        _TOOLCHAIN = None
        _LOADED.clear()


def source_key(source: str) -> str:
    """Structural hash of a rendered translation unit (the cache key)."""
    payload = f"abi{ABI_VERSION}|{cc_command()}|{'|'.join(CFLAGS)}|".encode()
    return hashlib.sha256(payload + source.encode()).hexdigest()


def load(source: str, decls: List[str]):
    """Compile (or fetch from cache) and dlopen one translation unit.

    ``decls`` are the cffi ``cdef`` prototypes for the functions the
    caller will pull out of the library. Returns ``(ffi, lib)`` or
    ``None`` when the toolchain is missing or the compile fails — the
    caller then degrades to the numpy per-op path.
    """
    if not available():
        return None
    key = source_key(source)
    with _LOCK:
        hit = _LOADED.get(key)
    if hit is not None:
        return hit

    counters = _counters()
    so_path = os.path.join(cache_dir(), f"{key}.so")
    began = time.perf_counter()
    if os.path.exists(so_path):
        counters.kernel_cache_hits += 1
    else:
        counters.kernel_cache_misses += 1
        # Keep the source next to the object for debuggability.
        try:
            c_path = os.path.join(cache_dir(), f"{key}.c")
            os.makedirs(cache_dir(), exist_ok=True)
            with open(c_path, "w") as handle:
                handle.write(source)
        except OSError:  # pragma: no cover - cache dir unwritable
            pass
        if not _compile(source, so_path):
            return None
    try:
        from cffi import FFI

        ffi = FFI()
        for decl in decls:
            ffi.cdef(decl)
        lib = ffi.dlopen(so_path)
    except Exception as exc:  # noqa: BLE001 — torn cache entry etc.
        logger.warning("kernel dlopen failed (%s); falling back", exc)
        try:
            os.unlink(so_path)
        except OSError:
            pass
        return None
    counters.compile_seconds += time.perf_counter() - began
    with _LOCK:
        _LOADED[key] = (ffi, lib)
    return ffi, lib


def new_ffi():
    """A fresh FFI for building argument buffers (caller keeps it alive)."""
    from cffi import FFI

    return FFI()
