"""Weight initialization schemes."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RngLike, ensure_rng


def xavier_uniform(
    fan_in: int, fan_out: int, gain: float = 1.0, rng: RngLike = None
) -> np.ndarray:
    """Glorot/Xavier uniform init for a ``(fan_in, fan_out)`` weight."""
    generator = ensure_rng(rng)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return generator.uniform(-bound, bound, size=(fan_in, fan_out))


def kaiming_uniform(
    fan_in: int, fan_out: int, rng: RngLike = None
) -> np.ndarray:
    """He/Kaiming uniform init (ReLU gain) for a ``(fan_in, fan_out)`` weight."""
    generator = ensure_rng(rng)
    bound = np.sqrt(6.0 / fan_in)
    return generator.uniform(-bound, bound, size=(fan_in, fan_out))


def zeros(*shape: int) -> np.ndarray:
    """All-zero array (bias init)."""
    return np.zeros(shape, dtype=np.float64)
