"""Learning-rate schedulers.

The paper: "ReduceLROnPlateau as scheduler to monitor the training loss
and reduces the learning rate when there is no improvements for a
defined number of epochs ... scheduler mode to min, factor to 5,
patience to 5 and minimum learning rate to 1e-5". PyTorch requires
``factor < 1``, so "factor 5" is read as dividing the rate by 5
(factor = 0.2); :class:`ReduceLROnPlateau` accepts either convention
and normalizes.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import OptimizationError
from repro.nn.optim import Optimizer


class ReduceLROnPlateau:
    """Shrink the learning rate when a monitored metric stops improving."""

    def __init__(
        self,
        optimizer: Optimizer,
        mode: str = "min",
        factor: float = 0.2,
        patience: int = 5,
        min_lr: float = 1e-5,
        threshold: float = 1e-4,
        eps: float = 1e-8,
    ):
        if mode not in ("min", "max"):
            raise OptimizationError(f"mode must be 'min' or 'max', got {mode!r}")
        if factor <= 0:
            raise OptimizationError("factor must be positive")
        if factor >= 1.0:
            # Accept the paper's "factor to 5" phrasing: divide by it.
            factor = 1.0 / factor
        self.optimizer = optimizer
        self.mode = mode
        self.factor = factor
        self.patience = patience
        self.min_lr = min_lr
        self.threshold = threshold
        self.eps = eps
        self.best = np.inf if mode == "min" else -np.inf
        self.num_bad_epochs = 0
        self.num_reductions = 0

    @property
    def learning_rate(self) -> float:
        """Current learning rate of the wrapped optimizer."""
        return self.optimizer.learning_rate

    def step(self, metric: float) -> bool:
        """Record one epoch's metric; returns True if the LR was reduced.

        ``num_bad_epochs`` resets only when the metric improves or when
        an *actual* reduction happens. With the LR already pinned at
        ``min_lr`` no reduction is possible — the counter used to reset
        anyway, silently re-arming the patience window so
        ``num_reductions`` undercounted plateau events (and callers
        watching it for early stopping saw a scheduler that appeared
        healthy forever). As in PyTorch, a shrink smaller than ``eps``
        (e.g. the float dust left by clamping ``lr * factor`` to
        ``min_lr``) does not count as a reduction either.
        """
        metric = float(metric)
        if self._improved(metric):
            self.best = metric
            self.num_bad_epochs = 0
            return False
        self.num_bad_epochs += 1
        if self.num_bad_epochs > self.patience:
            new_rate = max(
                self.optimizer.learning_rate * self.factor, self.min_lr
            )
            reduced = self.optimizer.learning_rate - new_rate > self.eps
            if reduced:
                self.optimizer.learning_rate = new_rate
                self.num_bad_epochs = 0
                self.num_reductions += 1
            return reduced
        return False

    def _improved(self, metric: float) -> bool:
        if self.mode == "min":
            return metric < self.best - self.threshold
        return metric > self.best + self.threshold


class StepLR:
    """Multiply the LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        if step_size < 1:
            raise OptimizationError("step_size must be >= 1")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.epoch = 0

    def step(self) -> None:
        """Advance one epoch."""
        self.epoch += 1
        if self.epoch % self.step_size == 0:
            self.optimizer.learning_rate *= self.gamma
