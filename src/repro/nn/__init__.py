"""Neural-network substrate: autograd, layers, losses, optimizers."""

from repro.nn.tensor import (
    Tensor,
    concat,
    eager,
    is_grad_enabled,
    is_lazy_enabled,
    no_grad,
    stack,
    where,
)
from repro.nn.module import Module, Parameter
from repro.nn.layers import (
    MLP,
    Dropout,
    LeakyReLU,
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.optim import SGD, Adam, GradClipper, Optimizer, clip_grad_norm
from repro.nn.schedulers import ReduceLROnPlateau, StepLR
from repro.nn.losses import huber_loss, mae_loss, mse_loss
from repro.nn.segment import (
    SegmentPlan,
    reference_scatter,
    gather,
    segment_count,
    segment_max,
    segment_mean,
    segment_softmax,
    segment_sum,
)
from repro.nn import init

__all__ = [
    "Tensor",
    "concat",
    "eager",
    "is_lazy_enabled",
    "is_grad_enabled",
    "no_grad",
    "stack",
    "where",
    "Module",
    "Parameter",
    "MLP",
    "Dropout",
    "LeakyReLU",
    "Linear",
    "ReLU",
    "Sequential",
    "Sigmoid",
    "Tanh",
    "SGD",
    "Adam",
    "GradClipper",
    "Optimizer",
    "clip_grad_norm",
    "SegmentPlan",
    "reference_scatter",
    "ReduceLROnPlateau",
    "StepLR",
    "huber_loss",
    "mae_loss",
    "mse_loss",
    "gather",
    "segment_count",
    "segment_max",
    "segment_mean",
    "segment_softmax",
    "segment_sum",
    "init",
]
