"""Module base class: parameter registration, train/eval mode, state IO."""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.exceptions import ModelError
from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A tensor registered as trainable model state."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; :meth:`parameters` finds them recursively. ``training``
    toggles dropout-style behavior via :meth:`train` / :meth:`eval`.
    """

    def __init__(self):
        self.training = True

    def forward(self, *args, **kwargs):
        """Compute the module output (override in subclasses)."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    # Parameter traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs recursively."""
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{full}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(f"{full}.{i}.")

    def parameters(self) -> List[Parameter]:
        """All trainable parameters."""
        return [param for _, param in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(param.size for param in self.parameters())

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Mode switching
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        """Enable training mode recursively (dropout active)."""
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        """Enable evaluation mode recursively (dropout off)."""
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in vars(self).values():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_mode(training)

    # ------------------------------------------------------------------
    # State dict
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters in place; names and shapes must match exactly."""
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise ModelError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in params.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ModelError(
                    f"shape mismatch for {name}: "
                    f"{value.shape} != {param.data.shape}"
                )
            param.data = value.copy()
