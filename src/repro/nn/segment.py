"""Indexed gather/scatter (segment) operations with autograd.

These are the message-passing primitives: ``gather`` pulls node rows out
along edges, the ``segment_*`` reductions push edge messages back into
nodes, and ``segment_softmax`` normalizes attention scores per
destination node (GAT). All operate on 2-D tensors ``(items, features)``
with a 1-D int index mapping items to segments.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError
from repro.nn.tensor import Tensor, _as_tensor


def _check_index(index: np.ndarray, num_items: int) -> np.ndarray:
    index = np.asarray(index, dtype=np.int64)
    if index.ndim != 1:
        raise ModelError(f"index must be 1-D, got shape {index.shape}")
    if index.shape[0] != num_items:
        raise ModelError(
            f"index length {index.shape[0]} != item count {num_items}"
        )
    if index.size and index.min() < 0:
        raise ModelError("negative segment index")
    return index


def gather(x: Tensor, index: np.ndarray) -> Tensor:
    """Select rows: ``out[i] = x[index[i]]``; backward scatter-adds."""
    x = _as_tensor(x)
    index = np.asarray(index, dtype=np.int64)
    if index.ndim != 1:
        raise ModelError("gather index must be 1-D")
    if index.size and index.max() >= x.shape[0]:
        raise ModelError("gather index out of range")
    x_shape = x.data.shape

    def backward(grad: np.ndarray) -> None:
        full = np.zeros(x_shape, dtype=np.float64)
        np.add.at(full, index, grad)
        x._accumulate(full)

    return Tensor._make(x.data[index], (x,), backward)


def segment_sum(x: Tensor, index: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows into segments: ``out[s] = sum_{i: index[i]=s} x[i]``."""
    x = _as_tensor(x)
    index = _check_index(index, x.shape[0])
    if index.size and index.max() >= num_segments:
        raise ModelError("segment index exceeds num_segments")
    out = np.zeros((num_segments,) + x.data.shape[1:], dtype=np.float64)
    np.add.at(out, index, x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad[index])

    return Tensor._make(out, (x,), backward)


def segment_mean(x: Tensor, index: np.ndarray, num_segments: int) -> Tensor:
    """Mean rows per segment; empty segments yield zeros."""
    x = _as_tensor(x)
    index = _check_index(index, x.shape[0])
    counts = np.bincount(index, minlength=num_segments).astype(np.float64)
    safe = np.maximum(counts, 1.0)
    shape = (num_segments,) + (1,) * (x.data.ndim - 1)
    total = segment_sum(x, index, num_segments)
    return total * Tensor(1.0 / safe.reshape(shape))


def segment_max(x: Tensor, index: np.ndarray, num_segments: int) -> Tensor:
    """Max rows per segment (GraphSAGE pooling); empty segments yield zeros.

    The gradient splits equally among elements tied at the segment max —
    a valid subgradient that keeps the op deterministic.
    """
    x = _as_tensor(x)
    index = _check_index(index, x.shape[0])
    if index.size and index.max() >= num_segments:
        raise ModelError("segment index exceeds num_segments")
    feature_shape = x.data.shape[1:]
    out = np.full((num_segments,) + feature_shape, -np.inf, dtype=np.float64)
    np.maximum.at(out, index, x.data)
    empty = np.isinf(out)
    out = np.where(empty, 0.0, out)
    x_data = x.data

    def backward(grad: np.ndarray) -> None:
        mask = (x_data == out[index]).astype(np.float64)
        tie_count = np.zeros((num_segments,) + feature_shape, dtype=np.float64)
        np.add.at(tie_count, index, mask)
        tie_count = np.maximum(tie_count, 1.0)
        x._accumulate(mask * grad[index] / tie_count[index])

    return Tensor._make(out, (x,), backward)


def segment_softmax(scores: Tensor, index: np.ndarray, num_segments: int) -> Tensor:
    """Softmax of ``scores`` within each segment (GAT attention weights).

    Numerically stabilized by subtracting the per-segment max as a
    *constant* shift — softmax is shift-invariant per segment, so the
    gradient stays exact.
    """
    scores = _as_tensor(scores)
    index = _check_index(index, scores.shape[0])
    feature_shape = scores.data.shape[1:]
    max_per_segment = np.full(
        (num_segments,) + feature_shape, -np.inf, dtype=np.float64
    )
    np.maximum.at(max_per_segment, index, scores.data)
    max_per_segment = np.where(
        np.isinf(max_per_segment), 0.0, max_per_segment
    )
    shifted = scores - Tensor(max_per_segment[index])
    exps = shifted.exp()
    denom = segment_sum(exps, index, num_segments)
    # Clamp empty-segment denominators (no incoming edges) to 1.
    denom_safe = denom + Tensor((denom.data == 0.0).astype(np.float64))
    return exps * gather(denom_safe ** -1.0, index)


def segment_count(index: np.ndarray, num_segments: int) -> np.ndarray:
    """Number of items per segment (plain numpy; not differentiable)."""
    index = np.asarray(index, dtype=np.int64)
    return np.bincount(index, minlength=num_segments).astype(np.float64)
