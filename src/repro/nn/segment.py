"""Indexed gather/scatter (segment) operations with autograd.

These are the message-passing primitives: ``gather`` pulls node rows out
along edges, the ``segment_*`` reductions push edge messages back into
nodes, and ``segment_softmax`` normalizes attention scores per
destination node (GAT). All operate on 2-D tensors ``(items, features)``
with a 1-D int index mapping items to segments.

Three execution paths exist for the scatter-add at the heart of every
sum reduction:

- the **bincount path** (default): the scatter is flattened to one
  ``np.bincount(weights=...)`` call. ``bincount`` accumulates weights
  sequentially in item order — exactly ``np.add.at``'s order — so it is
  **bitwise identical** to the seed kernels while running several times
  faster (``ufunc.at`` dispatches per element);
- the **reference path**: the seed repo's literal ``np.add.at`` /
  ``np.maximum.at`` kernels, kept (like the simulator's
  ``_apply_mixer_reference``) as the ground truth for equivalence tests
  and as the "before" arm of the training benchmark — enabled via the
  :func:`reference_scatter` context manager;
- the **CSR path**: a :class:`SegmentPlan` precomputed once per cached
  batch stable-sorts the index, records per-segment boundaries, and
  reduces with ``np.add.reduceat`` / ``np.maximum.reduceat``; indices
  that are already sorted (pooling's ``node_graph``, compile-time
  sorted edges) skip the permutation entirely.

``maximum.reduceat`` is bitwise identical to ``maximum.at`` (max is
exact), but ``add.reduceat`` uses pairwise summation while ``add.at``
accumulates sequentially, so float sums can differ in the last ulp.
The CSR path is therefore *opt-in*: callers pass ``plan=`` explicitly
(the trainer gates it behind ``TrainingConfig.csr_kernels``), and
equivalence is covered by dedicated tests. All paths compose with the
batch-invariant matmul mode in :mod:`repro.nn.tensor` — segment ops
never touch gemm.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

import numpy as np

from repro.exceptions import ModelError
from repro.nn import lazyir
from repro.nn.backends.numpy_backend import flat_scatter_index
from repro.nn.tensor import Tensor, _as_tensor, _lazy_result, is_lazy_enabled

_REFERENCE_SCATTER = False


@contextmanager
def reference_scatter():
    """Run plan-less scatter-adds through the seed ``np.add.at`` kernel.

    The bincount scatter is bitwise identical to ``np.add.at``, so this
    changes speed, never values. Benchmarks use it as the honest
    "before" arm; tests use it to assert that identity.
    """
    global _REFERENCE_SCATTER
    previous = _REFERENCE_SCATTER
    _REFERENCE_SCATTER = True
    try:
        yield
    finally:
        _REFERENCE_SCATTER = previous


def _check_index(index: np.ndarray, num_items: int) -> np.ndarray:
    index = np.asarray(index, dtype=np.int64)
    if index.ndim != 1:
        raise ModelError(f"index must be 1-D, got shape {index.shape}")
    if index.shape[0] != num_items:
        raise ModelError(
            f"index length {index.shape[0]} != item count {num_items}"
        )
    if index.size and index.min() < 0:
        raise ModelError("negative segment index")
    return index


class SegmentPlan:
    """Precomputed CSR layout for a fixed ``(index, num_segments)`` pair.

    Stable-sorting the index once exposes each segment as a contiguous
    run, so every subsequent reduction is a ``reduceat`` over
    precomputed boundaries instead of an item-by-item ``ufunc.at``.
    Already-sorted indices (e.g. ``node_graph``, or edge arrays sorted
    at compile time) skip the permutation entirely.

    Attributes
    ----------
    index:
        The original (unsorted) segment index, int64.
    num_segments:
        Total segment count, including empty segments.
    is_sorted:
        Whether ``index`` was already non-decreasing.
    perm:
        Stable argsort of ``index`` (``None`` when already sorted).
        Stability preserves the within-segment item order, which keeps
        the summation order per segment identical to the scatter path
        (up to ``reduceat``'s pairwise blocking).
    counts:
        Items per segment, shape ``(num_segments,)``.
    """

    __slots__ = (
        "index",
        "num_segments",
        "num_items",
        "is_sorted",
        "perm",
        "counts",
        "_nonempty",
        "_reduce_starts",
    )

    def __init__(self, index: np.ndarray, num_segments: int):
        index = np.asarray(index, dtype=np.int64)
        if index.ndim != 1:
            raise ModelError(f"index must be 1-D, got shape {index.shape}")
        num_segments = int(num_segments)
        if num_segments < 0:
            raise ModelError("num_segments must be non-negative")
        if index.size:
            if index.min() < 0:
                raise ModelError("negative segment index")
            if index.max() >= num_segments:
                raise ModelError("segment index exceeds num_segments")
        self.index = index
        self.num_segments = num_segments
        self.num_items = int(index.shape[0])
        self.is_sorted = (
            bool(np.all(index[1:] >= index[:-1])) if index.size else True
        )
        self.perm: Optional[np.ndarray] = (
            None if self.is_sorted else np.argsort(index, kind="stable")
        )
        sorted_index = index if self.perm is None else index[self.perm]
        self.counts = np.bincount(index, minlength=num_segments)
        self._nonempty = np.flatnonzero(self.counts)
        self._reduce_starts = np.searchsorted(sorted_index, self._nonempty)

    def _ordered(self, data: np.ndarray) -> np.ndarray:
        return data if self.perm is None else data[self.perm]

    def sum_into(self, data: np.ndarray) -> np.ndarray:
        """Segment sums of ``data`` rows, shape ``(num_segments, ...)``."""
        out = np.zeros(
            (self.num_segments,) + data.shape[1:], dtype=np.float64
        )
        if self._nonempty.size:
            out[self._nonempty] = np.add.reduceat(
                self._ordered(data), self._reduce_starts, axis=0
            )
        return out

    def max_into(self, data: np.ndarray) -> np.ndarray:
        """Segment maxima of ``data`` rows; empty segments are ``-inf``."""
        out = np.full(
            (self.num_segments,) + data.shape[1:], -np.inf, dtype=np.float64
        )
        if self._nonempty.size:
            out[self._nonempty] = np.maximum.reduceat(
                self._ordered(data), self._reduce_starts, axis=0
            )
        return out

    def matches(self, num_items: int, num_segments: int) -> bool:
        """Cheap shape compatibility check against a call site."""
        return (
            self.num_items == int(num_items)
            and self.num_segments == int(num_segments)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SegmentPlan(items={self.num_items}, "
            f"segments={self.num_segments}, sorted={self.is_sorted})"
        )


def _check_plan(
    plan: Optional[SegmentPlan], num_items: int, num_segments: int
) -> Optional[SegmentPlan]:
    if plan is not None and not plan.matches(num_items, num_segments):
        raise ModelError(
            f"segment plan ({plan.num_items} items, "
            f"{plan.num_segments} segments) does not match call site "
            f"({num_items} items, {num_segments} segments)"
        )
    return plan


def _scatter_mode(plan: Optional[SegmentPlan]):
    """Kernel selection for a lazy scatter-add, mirroring
    :func:`_scatter_add`'s dispatch. Read when the op (or its gradient)
    is *recorded* — the same moment the eager path would pick a kernel —
    so ``reference_scatter()`` blocks behave identically even when
    realization happens after the context exits."""
    if plan is not None:
        return "csr", (plan.perm, plan._nonempty, plan._reduce_starts)
    if _REFERENCE_SCATTER:
        return "ref", None
    return "bc", None


def _segmax_mode(plan: Optional[SegmentPlan]):
    """Kernel selection for a lazy segment max (no bincount variant)."""
    if plan is not None:
        return "csr", (plan.perm, plan._nonempty, plan._reduce_starts)
    return "ref", None


def _scatter_add(
    shape: tuple,
    index: np.ndarray,
    values: np.ndarray,
    plan: Optional[SegmentPlan],
) -> np.ndarray:
    """Dense scatter-add: ``out[index[i]] += values[i]`` along axis 0."""
    if plan is not None:
        return plan.sum_into(values)
    if _REFERENCE_SCATTER:
        out = np.zeros(shape, dtype=np.float64)
        np.add.at(out, index, values)
        return out
    values = np.asarray(values, dtype=np.float64)
    if values.ndim == 1:
        return np.bincount(index, weights=values, minlength=shape[0])
    # Flatten trailing dims into independent bins: bincount accumulates
    # weights in item order, matching np.add.at bit for bit. The flat
    # index is memoized per index array (see numpy_backend), so cached
    # batches pay for the flattening once, not once per step.
    cols = int(np.prod(shape[1:]))
    return np.bincount(
        flat_scatter_index(index, cols),
        weights=values.reshape(-1),
        minlength=shape[0] * cols,
    ).reshape(shape)


def gather(
    x: Tensor, index: np.ndarray, plan: Optional[SegmentPlan] = None
) -> Tensor:
    """Select rows: ``out[i] = x[index[i]]``; backward scatter-adds.

    ``plan`` (a :class:`SegmentPlan` over ``index`` with
    ``num_segments == x.shape[0]``) accelerates the backward
    scatter-add via the CSR path.
    """
    x = _as_tensor(x)
    index = np.asarray(index, dtype=np.int64)
    if index.ndim != 1:
        raise ModelError("gather index must be 1-D")
    if index.size and index.max() >= x.shape[0]:
        raise ModelError("gather index out of range")
    _check_plan(plan, index.shape[0], x.shape[0])
    if is_lazy_enabled():
        x_shape = x.shape
        node = lazyir.gather_node(x._lazy_node(), index)

        def vjp(g) -> None:
            mode, plan_arrays = _scatter_mode(plan)
            x._acc_node(
                lazyir.scatter_add_node(g, index, x_shape, mode, plan_arrays)
            )

        return _lazy_result(node, (x,), vjp)

    x_shape = x.data.shape

    def backward(grad: np.ndarray) -> None:
        x._accumulate(_scatter_add(x_shape, index, grad, plan))

    return Tensor._make(x.data[index], (x,), backward)


def segment_sum(
    x: Tensor,
    index: np.ndarray,
    num_segments: int,
    plan: Optional[SegmentPlan] = None,
) -> Tensor:
    """Sum rows into segments: ``out[s] = sum_{i: index[i]=s} x[i]``."""
    x = _as_tensor(x)
    index = _check_index(index, x.shape[0])
    if index.size and index.max() >= num_segments:
        raise ModelError("segment index exceeds num_segments")
    _check_plan(plan, x.shape[0], num_segments)
    if is_lazy_enabled():
        mode, plan_arrays = _scatter_mode(plan)
        node = lazyir.scatter_add_node(
            x._lazy_node(),
            index,
            (num_segments,) + x.shape[1:],
            mode,
            plan_arrays,
        )

        def vjp(g) -> None:
            x._acc_node(lazyir.gather_node(g, index))

        return _lazy_result(node, (x,), vjp)

    out = _scatter_add(
        (num_segments,) + x.data.shape[1:], index, x.data, plan
    )

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad[index])

    return Tensor._make(out, (x,), backward)


def segment_mean(
    x: Tensor,
    index: np.ndarray,
    num_segments: int,
    plan: Optional[SegmentPlan] = None,
) -> Tensor:
    """Mean rows per segment; empty segments yield zeros."""
    x = _as_tensor(x)
    index = _check_index(index, x.shape[0])
    if plan is not None:
        _check_plan(plan, x.shape[0], num_segments)
        counts = plan.counts.astype(np.float64)
    else:
        counts = np.bincount(index, minlength=num_segments).astype(np.float64)
    safe = np.maximum(counts, 1.0)
    shape = (num_segments,) + (1,) * (x.ndim - 1)
    total = segment_sum(x, index, num_segments, plan=plan)
    return total * Tensor(1.0 / safe.reshape(shape))


def segment_max(
    x: Tensor,
    index: np.ndarray,
    num_segments: int,
    plan: Optional[SegmentPlan] = None,
) -> Tensor:
    """Max rows per segment (GraphSAGE pooling); empty segments yield zeros.

    The gradient splits equally among elements tied at the segment max —
    a valid subgradient that keeps the op deterministic. Max is exact
    arithmetic, so the CSR path is bitwise identical to the scatter
    path here (tie counts are small-integer sums, also exact).
    """
    x = _as_tensor(x)
    index = _check_index(index, x.shape[0])
    if index.size and index.max() >= num_segments:
        raise ModelError("segment index exceeds num_segments")
    _check_plan(plan, x.shape[0], num_segments)
    if is_lazy_enabled():
        x_node = x._lazy_node()
        out_shape = (num_segments,) + x.shape[1:]
        max_mode, max_plan = _segmax_mode(plan)
        raw = lazyir.segment_max_raw_node(
            x_node, index, out_shape, max_mode, max_plan
        )
        node = lazyir.where_node(lazyir.alu1("isinf", raw), 0.0, raw)

        def vjp(g) -> None:
            mask = lazyir.cast_f8(
                lazyir.alu("eq", x_node, lazyir.gather_node(node, index))
            )
            mode, plan_arrays = _scatter_mode(plan)
            tie_count = lazyir.alu(
                "maximum",
                lazyir.scatter_add_node(
                    mask, index, out_shape, mode, plan_arrays
                ),
                1.0,
            )
            x._acc_node(
                lazyir.alu(
                    "div",
                    lazyir.alu("mul", mask, lazyir.gather_node(g, index)),
                    lazyir.gather_node(tie_count, index),
                )
            )

        return _lazy_result(node, (x,), vjp)

    feature_shape = x.data.shape[1:]
    if plan is not None:
        out = plan.max_into(x.data)
    else:
        out = np.full(
            (num_segments,) + feature_shape, -np.inf, dtype=np.float64
        )
        np.maximum.at(out, index, x.data)
    empty = np.isinf(out)
    out = np.where(empty, 0.0, out)
    x_data = x.data

    def backward(grad: np.ndarray) -> None:
        mask = (x_data == out[index]).astype(np.float64)
        tie_count = _scatter_add(
            (num_segments,) + feature_shape, index, mask, plan
        )
        tie_count = np.maximum(tie_count, 1.0)
        x._accumulate(mask * grad[index] / tie_count[index])

    return Tensor._make(out, (x,), backward)


def segment_softmax(
    scores: Tensor,
    index: np.ndarray,
    num_segments: int,
    plan: Optional[SegmentPlan] = None,
) -> Tensor:
    """Softmax of ``scores`` within each segment (GAT attention weights).

    Numerically stabilized by subtracting the per-segment max as a
    *constant* shift — softmax is shift-invariant per segment, so the
    gradient stays exact.
    """
    scores = _as_tensor(scores)
    index = _check_index(index, scores.shape[0])
    _check_plan(plan, scores.shape[0], num_segments)
    if is_lazy_enabled():
        scores_node = scores._lazy_node()
        out_shape = (num_segments,) + scores.shape[1:]
        max_mode, max_plan = _segmax_mode(plan)
        raw = lazyir.segment_max_raw_node(
            scores_node, index, out_shape, max_mode, max_plan
        )
        masked = lazyir.where_node(lazyir.alu1("isinf", raw), 0.0, raw)
        # The shift and the empty-denominator indicator are constants
        # (detached node wrappers): softmax is shift-invariant, so no
        # gradient flows through either — matching the eager path.
        shift = _lazy_result(lazyir.gather_node(masked, index), (), None)
        shifted = scores - shift
        exps = shifted.exp()
        denom = segment_sum(exps, index, num_segments, plan=plan)
        indicator = _lazy_result(
            lazyir.cast_f8(lazyir.alu("eq", denom._lazy_node(), 0.0)),
            (),
            None,
        )
        denom_safe = denom + indicator
        return exps * gather(denom_safe ** -1.0, index, plan=plan)

    feature_shape = scores.data.shape[1:]
    if plan is not None:
        max_per_segment = plan.max_into(scores.data)
    else:
        max_per_segment = np.full(
            (num_segments,) + feature_shape, -np.inf, dtype=np.float64
        )
        np.maximum.at(max_per_segment, index, scores.data)
    max_per_segment = np.where(
        np.isinf(max_per_segment), 0.0, max_per_segment
    )
    shifted = scores - Tensor(max_per_segment[index])
    exps = shifted.exp()
    denom = segment_sum(exps, index, num_segments, plan=plan)
    # Clamp empty-segment denominators (no incoming edges) to 1.
    denom_safe = denom + Tensor((denom.data == 0.0).astype(np.float64))
    return exps * gather(denom_safe ** -1.0, index, plan=plan)


def segment_count(index: np.ndarray, num_segments: int) -> np.ndarray:
    """Number of items per segment (plain numpy; not differentiable)."""
    index = np.asarray(index, dtype=np.int64)
    return np.bincount(index, minlength=num_segments).astype(np.float64)
