"""Typed op-IR for the lazy tensor engine.

Tensor operators in :mod:`repro.nn.tensor` no longer compute when the
lazy engine is active — they record a :class:`LazyNode` describing *what*
to compute. A node is ``(op, srcs, arg, shape, dtype)``: ``op`` names a
primitive from the table below, ``srcs`` are the input nodes, and
``arg`` carries the structural payload (scalar constants, axes, frozen
index keys, kernel-mode flags). Realization — walking a recorded graph,
fusing it, and running kernels — lives in :mod:`repro.nn.realize`;
the numpy kernels themselves in :mod:`repro.nn.backends.numpy_backend`.

Design rules that make bitwise equivalence with the eager path possible:

- **One node = one numpy call.** Composite tensor ops (``sigmoid``,
  ``relu``, the backward formulas) are recorded as the exact sequence of
  primitive calls the eager code performs, in the same order on the same
  values. Kernels then replay that sequence — same ufunc, same operand
  order, same scalar handling — so results match bit for bit.
- **Views stay views.** ``transpose`` / ``reshape`` / basic-slice
  ``getitem`` produce numpy views in the eager path; their IR nodes are
  marked ``VIEW`` and realized as views too, so downstream reductions
  see identically-strided inputs.
- **Mode flags are captured at record time.** ``batch_invariant()`` and
  ``reference_scatter()`` select kernels when the op is *recorded*, not
  when the graph is realized — matching the eager path, where recording
  and computing are the same moment. Serving may realize predictions
  after its ``batch_invariant()`` block exits; the recorded flag keeps
  the bit-identical micro-batching guarantee intact.

Common subexpressions are deduplicated at record time through a
hash-consing table keyed on ``(op, arg, src identities)``. The table is
cleared at every realization: a realize is the sync point after which
callers may mutate buffers in place (the Adam step writes ``param.data``
with ``out=``), and a stale hit across that boundary would alias old
values. Within one record window — a forward plus its backward — the
table makes the backward formulas share forward nodes (``exp``'s
gradient reuses the forward ``exp`` result) without any bookkeeping in
the tensor layer.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import ModelError

F8 = np.dtype(np.float64)
B1 = np.dtype(np.bool_)

# ---------------------------------------------------------------------------
# Op kinds (drive fusion grouping in realize.py)
# ---------------------------------------------------------------------------
KIND_BUFFER = 0   #: concrete input array
KIND_EW = 1       #: elementwise; fuses into elementwise/reduce consumers
KIND_REDUCE = 2   #: axis reduction; fuses like elementwise
KIND_VIEW = 3     #: stride trick; realized as a numpy view, never copied
KIND_OPAQUE = 4   #: matmul / gather / scatter / concat; own kernel

OP_KIND = {
    "buffer": KIND_BUFFER,
    # elementwise (one ufunc each)
    "add": KIND_EW, "sub": KIND_EW, "mul": KIND_EW, "div": KIND_EW,
    "pow": KIND_EW, "maximum": KIND_EW, "neg": KIND_EW, "exp": KIND_EW,
    "log": KIND_EW, "sqrt": KIND_EW, "tanh": KIND_EW, "abs": KIND_EW,
    "sign": KIND_EW, "eq": KIND_EW, "gt0": KIND_EW, "isinf": KIND_EW,
    "not": KIND_EW, "cast": KIND_EW, "expand": KIND_EW, "where": KIND_EW,
    # reductions
    "sum": KIND_REDUCE, "mean": KIND_REDUCE, "max": KIND_REDUCE,
    # views
    "transpose": KIND_VIEW, "reshape": KIND_VIEW, "getitem": KIND_VIEW,
    # opaque kernels
    "matmul": KIND_OPAQUE, "matmul_nt": KIND_OPAQUE, "matmul_tn": KIND_OPAQUE,
    "getitem_arr": KIND_OPAQUE, "getitem_obj": KIND_OPAQUE,
    "putadd": KIND_OPAQUE, "scatter_add": KIND_OPAQUE,
    "segmax_raw": KIND_OPAQUE, "concat": KIND_OPAQUE, "stack": KIND_OPAQUE,
}

#: Ops whose structural identity cannot be hashed (raw python index keys)
#: or whose output shape depends on input *values* (boolean-mask
#: indexing). Graphs containing one skip the plan cache and the CSE
#: table — they compile fresh every realize.
UNCACHEABLE_OPS = frozenset({"getitem_obj"})

BOOL_OPS = frozenset({"eq", "gt0", "isinf", "not"})


class LazyNode:
    """One recorded operation (or concrete input buffer).

    ``buffer`` is ``None`` until the node is realized; buffer nodes wrap
    the caller's array directly (no copy), so in-place parameter updates
    between steps are visible to the next recording automatically.
    """

    __slots__ = ("op", "srcs", "arg", "shape", "dtype", "buffer", "nocache")

    def __init__(self, op, srcs, arg, shape, dtype, buffer=None,
                 nocache=False):
        self.op = op
        self.srcs = srcs
        self.arg = arg
        self.shape = shape
        self.dtype = dtype
        self.buffer = buffer
        self.nocache = nocache

    @property
    def kind(self) -> int:
        return OP_KIND[self.op]

    @property
    def size(self) -> int:
        return math.prod(self.shape) if self.shape else 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "realized" if self.buffer is not None else "lazy"
        return f"LazyNode({self.op}, shape={self.shape}, {state})"


# ---------------------------------------------------------------------------
# Hash-consing (record-time CSE)
# ---------------------------------------------------------------------------
_CSE_TABLE: dict = {}


def clear_cse_table() -> None:
    """Drop the record-window CSE table (called by every realize)."""
    _CSE_TABLE.clear()


def _node(op, srcs, arg, shape, dtype, nocache=False) -> LazyNode:
    """Create (or reuse via CSE) an op node.

    The CSE key flattens source identities directly into the tuple
    (arity keeps same-prefix keys distinct) — no inner tuple build on
    the record hot path.
    """
    if nocache:
        return LazyNode(op, srcs, arg, shape, dtype, nocache=True)
    n = len(srcs)
    if n == 1:
        key = (op, arg, id(srcs[0]))
    elif n == 2:
        key = (op, arg, id(srcs[0]), id(srcs[1]))
    else:
        key = (op, arg, n) + tuple(id(s) for s in srcs)
    hit = _CSE_TABLE.get(key)
    if hit is not None:
        return hit
    out = LazyNode(op, srcs, arg, shape, dtype)
    _CSE_TABLE[key] = out
    return out


def buffer(array: np.ndarray) -> LazyNode:
    """Wrap a concrete array as a graph input (no copy)."""
    return LazyNode("buffer", (), None, array.shape, array.dtype,
                    buffer=array)


# ---------------------------------------------------------------------------
# Shape / dtype inference
# ---------------------------------------------------------------------------
def _broadcast(a: Tuple[int, ...], b: Tuple[int, ...]) -> Tuple[int, ...]:
    if a == b or not b:
        return a
    if not a:
        return b
    return np.broadcast_shapes(a, b)


Scalar = Union[int, float]
Operand = Union[LazyNode, Scalar]


def alu(op: str, a: Operand, b: Operand) -> LazyNode:
    """Binary elementwise node; either operand may be a python scalar.

    Scalars are inlined into ``arg`` (``("sl", v)`` / ``("sr", v)``) so
    they participate in the structural plan key instead of the runtime
    buffer bindings — a different constant is a different plan, exactly
    as a different op would be.
    """
    dtype = B1 if op in BOOL_OPS else F8
    if isinstance(a, LazyNode):
        if isinstance(b, LazyNode):
            ash, bsh = a.shape, b.shape
            return _node(op, (a, b), None,
                         ash if ash == bsh else _broadcast(ash, bsh), dtype)
        return _node(op, (a,), ("sr", float(b)), a.shape, dtype)
    return _node(op, (b,), ("sl", float(a)), b.shape, dtype)


def alu1(op: str, a: LazyNode) -> LazyNode:
    """Unary elementwise node."""
    return _node(op, (a,), None, a.shape,
                 B1 if op in BOOL_OPS else F8)


def cast_f8(a: LazyNode) -> LazyNode:
    """``astype(np.float64)`` as an IR node."""
    return _node("cast", (a,), None, a.shape, F8)


def where_node(cond: LazyNode, a: Operand, b: Operand) -> LazyNode:
    """``np.where`` node; value branches may be scalars."""
    srcs = [cond]
    shape = cond.shape
    spec = []
    for operand in (a, b):
        if isinstance(operand, LazyNode):
            srcs.append(operand)
            shape = _broadcast(shape, operand.shape)
            spec.append(None)
        else:
            spec.append(float(operand))
    return _node("where", tuple(srcs), ("w", spec[0], spec[1]), shape, F8)


def _freeze_axis(axis):
    return tuple(axis) if isinstance(axis, (list, tuple)) else axis


def reduced_shape(shape: Tuple[int, ...], axis, keepdims: bool):
    """Output shape of a numpy reduction over ``axis``."""
    if axis is None:
        return (1,) * len(shape) if keepdims else ()
    axes = axis if isinstance(axis, tuple) else (axis,)
    axes = {a % len(shape) for a in axes}
    if keepdims:
        return tuple(1 if i in axes else d for i, d in enumerate(shape))
    return tuple(d for i, d in enumerate(shape) if i not in axes)


def reduce_node(op: str, a: LazyNode, axis, keepdims: bool) -> LazyNode:
    """Reduction node (``sum`` / ``mean`` / ``max``)."""
    axis = _freeze_axis(axis)
    return _node(op, (a,), (axis, bool(keepdims)),
                 reduced_shape(a.shape, axis, keepdims), F8)


def expand_node(a: LazyNode, reshape: Tuple[int, ...],
                target: Tuple[int, ...]) -> LazyNode:
    """Broadcast-copy a reduced gradient back to the pre-reduction shape.

    Mirrors ``tensor._expand_reduced``: reshape (the ``expand_dims``
    metadata), ``broadcast_to``, then a materializing copy.
    """
    return _node("expand", (a,), (tuple(reshape), tuple(target)), tuple(target),
                 F8)


def matmul_node(a: LazyNode, b: LazyNode, invariant: bool) -> LazyNode:
    """2-D matrix product; ``invariant`` selects the rowwise kernel."""
    return _node("matmul", (a, b), bool(invariant),
                 (a.shape[0], b.shape[1]), F8)


def matmul_nt(a: LazyNode, b: LazyNode) -> LazyNode:
    """``a @ b.T`` (matmul backward wrt the left operand)."""
    return _node("matmul_nt", (a, b), None, (a.shape[0], b.shape[0]), F8)


def matmul_tn(a: LazyNode, b: LazyNode) -> LazyNode:
    """``a.T @ b`` (matmul backward wrt the right operand)."""
    return _node("matmul_tn", (a, b), None, (a.shape[1], b.shape[1]), F8)


def transpose_node(a: LazyNode) -> LazyNode:
    """2-D transpose (a view)."""
    return _node("transpose", (a,), None, (a.shape[1], a.shape[0]), a.dtype)


def reshape_node(a: LazyNode, shape: Tuple[int, ...]) -> LazyNode:
    """Reshape to a fully-resolved shape (no ``-1``)."""
    return _node("reshape", (a,), tuple(shape), tuple(shape), a.dtype)


def resolve_reshape(old_shape: Tuple[int, ...], shape) -> Tuple[int, ...]:
    """Resolve a user reshape spec (``-1`` allowed) against ``old_shape``."""
    shape = tuple(int(d) for d in shape)
    total = math.prod(old_shape) if old_shape else 1
    if -1 in shape:
        known = math.prod(d for d in shape if d != -1)
        if shape.count(-1) > 1 or known == 0 or total % known:
            raise ModelError(
                f"cannot reshape {old_shape} into {shape}"
            )
        shape = tuple(total // known if d == -1 else d for d in shape)
    new_total = math.prod(shape) if shape else 1
    if new_total != total:
        raise ModelError(
            f"cannot reshape {old_shape} (size {total}) into {shape}"
        )
    return shape


# ---------------------------------------------------------------------------
# Indexing
# ---------------------------------------------------------------------------
def freeze_key(key):
    """Turn a basic index key into a hashable structural token.

    Returns ``None`` when the key is not basic (contains arrays or other
    unhashable parts) — callers then fall back to the array /
    uncacheable paths.
    """
    if isinstance(key, tuple):
        parts = []
        for part in key:
            frozen = freeze_key(part)
            if frozen is None:
                return None
            parts.append(frozen)
        return ("t",) + tuple(parts)
    if isinstance(key, slice):
        for edge in (key.start, key.stop, key.step):
            if edge is not None and not isinstance(edge, (int, np.integer)):
                return None
        return ("s", key.start, key.stop, key.step)
    if isinstance(key, (int, np.integer)):
        return ("i", int(key))
    if key is None:
        return ("n",)
    if key is Ellipsis:
        return ("e",)
    return None


def thaw_key(frozen):
    """Invert :func:`freeze_key`."""
    tag = frozen[0]
    if tag == "t":
        return tuple(thaw_key(part) for part in frozen[1:])
    if tag == "s":
        return slice(frozen[1], frozen[2], frozen[3])
    if tag == "i":
        return frozen[1]
    if tag == "n":
        return None
    return Ellipsis


def _dummy_shape(shape: Tuple[int, ...], key) -> Tuple[int, ...]:
    """Shape of ``array[key]`` without allocating the array."""
    probe = np.broadcast_to(np.empty((), dtype=np.float64), shape)
    return probe[key].shape


def getitem_node(a: LazyNode, key) -> LazyNode:
    """Index node: basic keys become views, int arrays become gathers,
    anything else an uncacheable opaque kernel."""
    frozen = freeze_key(key)
    if frozen is not None:
        return _node("getitem", (a,), frozen, _dummy_shape(a.shape, key),
                     a.dtype)
    if isinstance(key, np.ndarray) and key.dtype != np.bool_:
        idx = buffer(key)
        return _node("getitem_arr", (a, idx), None,
                     key.shape + a.shape[1:], a.dtype)
    # Boolean masks (value-dependent shape) and exotic keys: compute the
    # shape honestly and skip every cache.
    shape = np.broadcast_to(np.empty((), dtype=np.float64), a.shape)[
        np.asarray(key) if isinstance(key, list) else key
    ].shape
    return _node("getitem_obj", (a,), ("obj", key), shape, a.dtype,
                 nocache=True)


def putadd_node(grad: LazyNode, key, shape: Tuple[int, ...]) -> LazyNode:
    """``zeros(shape); np.add.at(out, key, grad)`` — getitem backward."""
    frozen = freeze_key(key)
    if frozen is not None:
        return _node("putadd", (grad,), ("basic", frozen, tuple(shape)),
                     tuple(shape), F8)
    if isinstance(key, np.ndarray) and key.dtype != np.bool_:
        return _node("putadd", (grad, buffer(key)), ("arr", tuple(shape)),
                     tuple(shape), F8)
    return _node("putadd", (grad,), ("obj", key, tuple(shape)), tuple(shape),
                 F8, nocache=True)


# ---------------------------------------------------------------------------
# Concatenation
# ---------------------------------------------------------------------------
def concat_node(parts: Sequence[LazyNode], axis: int) -> LazyNode:
    shape = list(parts[0].shape)
    shape[axis] = sum(p.shape[axis] for p in parts)
    return _node("concat", tuple(parts), int(axis), tuple(shape), F8)


def stack_node(parts: Sequence[LazyNode], axis: int) -> LazyNode:
    base = list(parts[0].shape)
    axis = int(axis)
    insert_at = axis if axis >= 0 else axis + len(base) + 1
    base.insert(insert_at, len(parts))
    return _node("stack", tuple(parts), axis, tuple(base), F8)


# ---------------------------------------------------------------------------
# Segment ops (gather / scatter with optional CSR plans)
# ---------------------------------------------------------------------------
def gather_node(x: LazyNode, index: np.ndarray) -> LazyNode:
    """Row gather ``x[index]`` with an int64 index buffer."""
    idx = buffer(index)
    return _node("getitem_arr", (x, idx), None, index.shape + x.shape[1:],
                 x.dtype)


def scatter_add_node(
    values: LazyNode,
    index: np.ndarray,
    shape: Tuple[int, ...],
    mode: str,
    plan_arrays: Optional[Tuple[Optional[np.ndarray], np.ndarray, np.ndarray]]
    = None,
) -> LazyNode:
    """Dense scatter-add node mirroring ``segment._scatter_add``.

    ``mode`` is one of ``"ref"`` (seed ``np.add.at``), ``"bc"`` (flat
    bincount), or ``"csr"`` (reduceat over ``plan_arrays = (perm|None,
    nonempty, starts)``). The mode is part of the structural key, so
    each path compiles to its own plan.
    """
    shape = tuple(shape)
    if mode == "csr":
        perm, nonempty, starts = plan_arrays
        srcs = [values]
        if perm is not None:
            srcs.append(buffer(perm))
        srcs.extend((buffer(nonempty), buffer(starts)))
        return _node("scatter_add", tuple(srcs),
                     ("csr", perm is not None, shape), shape, F8)
    return _node("scatter_add", (values, buffer(index)), (mode, shape),
                 shape, F8)


def segment_max_raw_node(
    values: LazyNode,
    index: np.ndarray,
    shape: Tuple[int, ...],
    mode: str,
    plan_arrays=None,
) -> LazyNode:
    """Segment max with ``-inf`` init (callers mask empties afterwards)."""
    shape = tuple(shape)
    if mode == "csr":
        perm, nonempty, starts = plan_arrays
        srcs = [values]
        if perm is not None:
            srcs.append(buffer(perm))
        srcs.extend((buffer(nonempty), buffer(starts)))
        return _node("segmax_raw", tuple(srcs),
                     ("csr", perm is not None, shape), shape, F8)
    return _node("segmax_raw", (values, buffer(index)), ("ref", shape),
                 shape, F8)
