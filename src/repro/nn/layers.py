"""Dense layers and containers: Linear, Dropout, activations, MLP."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.exceptions import ModelError
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor
from repro.utils.rng import RngLike, ensure_rng


class Linear(Module):
    """Affine map ``y = x W + b`` with Xavier-initialized ``W``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: RngLike = None,
    ):
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise ModelError("feature dimensions must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.xavier_uniform(in_features, out_features, rng=rng)
        )
        self.bias = Parameter(init.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ModelError(
                f"Linear expected {self.in_features} input features, "
                f"got {x.shape[-1]}"
            )
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Dropout(Module):
    """Inverted dropout: active in training mode only.

    The paper uses ``dropout ratio 0.5 during training`` on the GNN
    embeddings.
    """

    def __init__(self, rate: float = 0.5, rng: RngLike = None):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ModelError(f"dropout rate {rate} not in [0, 1)")
        self.rate = rate
        self._rng = ensure_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.rate == 0.0:
            return x
        keep = 1.0 - self.rate
        mask = (self._rng.random(x.shape) < keep).astype(np.float64) / keep
        return x * Tensor(mask)


class ReLU(Module):
    """ReLU activation module."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    """LeakyReLU activation module."""

    def __init__(self, negative_slope: float = 0.2):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class Tanh(Module):
    """Tanh activation module."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    """Sigmoid activation module."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Sequential(Module):
    """Run modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.modules = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.modules:
            x = module(x)
        return x

    def __len__(self) -> int:
        return len(self.modules)


class MLP(Module):
    """Multi-layer perceptron with ReLU between hidden layers.

    ``dims = [in, h1, ..., out]``; the final layer is linear (no
    activation) so the network can regress unbounded QAOA angles.
    """

    def __init__(
        self,
        dims: Sequence[int],
        dropout: float = 0.0,
        rng: RngLike = None,
    ):
        super().__init__()
        if len(dims) < 2:
            raise ModelError("MLP needs at least input and output dims")
        generator = ensure_rng(rng)
        self.layers: List[Module] = []
        for i in range(len(dims) - 1):
            self.layers.append(Linear(dims[i], dims[i + 1], rng=generator))
            if i < len(dims) - 2:
                self.layers.append(ReLU())
                if dropout > 0:
                    self.layers.append(Dropout(dropout, rng=generator))

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x
