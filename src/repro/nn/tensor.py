"""Reverse-mode autograd on numpy arrays.

This is the substrate that replaces PyTorch for this reproduction: a
:class:`Tensor` wrapping a float64 numpy array, recording the operations
applied to it, and computing exact gradients with :meth:`Tensor.backward`.
The op set is exactly what the GNN stack needs — dense algebra,
activations, reductions, indexed gather/scatter — nothing speculative.

Gradient checks for every op live in ``tests/test_nn_tensor.py``
(hypothesis-driven finite-difference comparisons).
"""

from __future__ import annotations

import contextlib
from typing import Callable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.exceptions import ModelError

ArrayLike = Union[float, int, Sequence, np.ndarray, "Tensor"]

_GRAD_ENABLED = True
_BATCH_INVARIANT = False


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def batch_invariant():
    """Context manager selecting batch-invariant matmul kernels.

    BLAS gemm picks different blocking (and therefore different rounding)
    depending on the row count, so row ``i`` of ``A @ W`` can differ in
    the last ulp between a 1-row and an N-row ``A``. Inside this context
    matmuls run through :func:`rowwise_matmul`, whose per-row result is
    independent of every other row — the property the serving layer needs
    so micro-batched inference is bit-identical to single-request
    inference regardless of how requests were coalesced.
    """
    global _BATCH_INVARIANT
    previous = _BATCH_INVARIANT
    _BATCH_INVARIANT = True
    try:
        yield
    finally:
        _BATCH_INVARIANT = previous


def is_batch_invariant() -> bool:
    """Whether matmuls currently use the batch-invariant kernel."""
    return _BATCH_INVARIANT


def rowwise_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a @ b`` via k-ordered outer-product accumulation.

    Each output row is built by the same fixed-order sequence of fused
    multiply-adds no matter how many rows ``a`` has, so results for a row
    never depend on the rest of the batch. Intended for the small inner
    dimensions of inference (k <= 64); training keeps BLAS gemm.
    """
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.float64)
    for k in range(b.shape[0]):
        out += a[:, k, None] * b[k]
    return out


class Tensor:
    """A numpy array with reverse-mode automatic differentiation.

    Attributes
    ----------
    data:
        The underlying float64 array.
    grad:
        Accumulated gradient (same shape as ``data``) after
        :meth:`backward`; ``None`` before.
    requires_grad:
        Whether gradients flow into this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data: ArrayLike, requires_grad: bool = False):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        """Array shape."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total element count."""
        return self.data.size

    def numpy(self) -> np.ndarray:
        """A defensive copy of the underlying array."""
        return self.data.copy()

    def item(self) -> float:
        """The scalar value (raises if not 1-element)."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else _raise(
            ModelError(f"item() on tensor of size {self.data.size}")
        )

    def detach(self) -> "Tensor":
        """A view of the data cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    # ------------------------------------------------------------------
    # Graph construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data)
        out.requires_grad = requires
        if requires:
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            grad = _unbroadcast(grad, self.data.shape)
        # No defensive copy: backward closures hand over arrays they do
        # not reuse, and accumulation allocates (`self.grad + grad`)
        # rather than mutating, so aliasing a pass-through gradient is
        # safe. Consumers that mutate gradients in place (the clippers
        # in repro.nn.optim) dedup by array identity and fall back to
        # an out-of-place scale for non-writeable views.
        self.grad = grad if self.grad is None else self.grad + grad

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (scalar outputs expect the default).
        """
        if not self.requires_grad:
            raise ModelError("backward() on a tensor without requires_grad")
        if grad is None:
            if self.data.size != 1:
                raise ModelError(
                    "backward() without an explicit gradient requires a "
                    "scalar output"
                )
            grad = np.ones_like(self.data)
        else:
            # Copy: the seed gradient may be caller-owned, and
            # _accumulate no longer copies.
            grad = np.array(
                grad.data if isinstance(grad, Tensor) else grad,
                dtype=np.float64,
            )
            if grad.shape != self.data.shape:
                raise ModelError(
                    f"gradient shape {grad.shape} != output shape {self.data.shape}"
                )

        order: List[Tensor] = []
        seen: Set[int] = set()

        def topo(node: "Tensor") -> None:
            if id(node) in seen:
                return
            seen.add(id(node))
            for parent in node._parents:
                topo(parent)
            order.append(node)

        topo(self)
        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = _as_tensor(other)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(grad)

        return Tensor._make(self.data + other.data, (self, other), backward)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = _as_tensor(other)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(-grad)

        return Tensor._make(self.data - other.data, (self, other), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return _as_tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = _as_tensor(other)
        self_data, other_data = self.data, other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other_data)
            other._accumulate(grad * self_data)

        return Tensor._make(self_data * other_data, (self, other), backward)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = _as_tensor(other)
        self_data, other_data = self.data, other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other_data)
            other._accumulate(-grad * self_data / other_data**2)

        return Tensor._make(self_data / other_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return _as_tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise ModelError("only scalar exponents are supported")
        self_data = self.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self_data ** (exponent - 1))

        return Tensor._make(self_data**exponent, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = _as_tensor(other)
        self_data, other_data = self.data, other.data
        if self_data.ndim != 2 or other_data.ndim != 2:
            raise ModelError("matmul supports 2-D tensors only")

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad @ other_data.T)
            other._accumulate(self_data.T @ grad)

        product = (
            rowwise_matmul(self_data, other_data)
            if _BATCH_INVARIANT
            else self_data @ other_data
        )
        return Tensor._make(product, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        result = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * result)

        return Tensor._make(result, (self,), backward)

    def log(self) -> "Tensor":
        """Elementwise natural log."""
        self_data = self.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self_data)

        return Tensor._make(np.log(self_data), (self,), backward)

    def sqrt(self) -> "Tensor":
        """Elementwise square root."""
        result = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / (2.0 * result))

        return Tensor._make(result, (self,), backward)

    def tanh(self) -> "Tensor":
        """Elementwise tanh."""
        result = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - result**2))

        return Tensor._make(result, (self,), backward)

    def sigmoid(self) -> "Tensor":
        """Elementwise logistic sigmoid."""
        result = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * result * (1.0 - result))

        return Tensor._make(result, (self,), backward)

    def relu(self) -> "Tensor":
        """Elementwise ReLU."""
        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(self.data * mask, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        """Elementwise LeakyReLU (GAT's attention nonlinearity)."""
        mask = self.data > 0
        slope_grad = np.where(mask, 1.0, negative_slope)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * slope_grad)

        return Tensor._make(
            np.where(mask, self.data, negative_slope * self.data),
            (self,),
            backward,
        )

    def abs(self) -> "Tensor":
        """Elementwise absolute value (sign subgradient at 0 is 0)."""
        sign = np.sign(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * sign)

        return Tensor._make(np.abs(self.data), (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (all axes when None)."""
        self_shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            expanded = _expand_reduced(grad, self_shape, axis, keepdims)
            self._accumulate(expanded)

        return Tensor._make(
            self.data.sum(axis=axis, keepdims=keepdims), (self,), backward
        )

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Mean over ``axis``."""
        self_shape = self.data.shape
        count = (
            self.data.size
            if axis is None
            else np.prod([self_shape[a] for a in _normalize_axes(axis, self.ndim)])
        )

        def backward(grad: np.ndarray) -> None:
            expanded = _expand_reduced(grad, self_shape, axis, keepdims)
            self._accumulate(expanded / count)

        return Tensor._make(
            self.data.mean(axis=axis, keepdims=keepdims), (self,), backward
        )

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Max over ``axis``; gradient splits equally among ties."""
        self_data = self.data
        self_shape = self_data.shape
        result = self_data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded_max = _expand_reduced(
                result if keepdims else np.asarray(result),
                self_shape,
                axis,
                keepdims,
            )
            mask = (self_data == expanded_max).astype(np.float64)
            tie_count = mask.sum(axis=axis, keepdims=True)
            expanded_grad = _expand_reduced(grad, self_shape, axis, keepdims)
            self._accumulate(expanded_grad * mask / tie_count)

        return Tensor._make(result, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        """Reshape (accepts a tuple or varargs)."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        self_shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(self_shape))

        return Tensor._make(self.data.reshape(shape), (self,), backward)

    def transpose(self) -> "Tensor":
        """2-D transpose."""
        if self.ndim != 2:
            raise ModelError("transpose supports 2-D tensors only")

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.T)

        return Tensor._make(self.data.T, (self,), backward)

    @property
    def T(self) -> "Tensor":
        """Alias for :meth:`transpose`."""
        return self.transpose()

    def __getitem__(self, key) -> "Tensor":
        self_shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            full = np.zeros(self_shape, dtype=np.float64)
            np.add.at(full, key, grad)
            self._accumulate(full)

        return Tensor._make(self.data[key], (self,), backward)

    # ------------------------------------------------------------------
    # Comparisons (return plain bool arrays; not differentiable)
    # ------------------------------------------------------------------
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > _raw(other)

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < _raw(other)

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= _raw(other)

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= _raw(other)


# ----------------------------------------------------------------------
# Free functions
# ----------------------------------------------------------------------
def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis``."""
    tensors = [_as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, stop)
            tensor._accumulate(grad[tuple(slicer)])

    return Tensor._make(data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``."""
    tensors = [_as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, pieces):
            tensor._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(data, tuple(tensors), backward)


def where(condition: np.ndarray, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise select: ``condition ? a : b`` (condition not differentiable)."""
    a = _as_tensor(a)
    b = _as_tensor(b)
    condition = np.asarray(condition, dtype=bool)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * condition)
        b._accumulate(grad * ~condition)

    return Tensor._make(np.where(condition, a.data, b.data), (a, b), backward)


def _as_tensor(value: ArrayLike) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def _raw(value: ArrayLike) -> np.ndarray:
    return value.data if isinstance(value, Tensor) else np.asarray(value)


def _raise(error: Exception):
    raise error


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce a broadcast gradient back to ``shape``."""
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _normalize_axes(axis, ndim: int) -> Tuple[int, ...]:
    if axis is None:
        return tuple(range(ndim))
    if isinstance(axis, (int, np.integer)):
        axis = (int(axis),)
    return tuple(a % ndim for a in axis)


def _expand_reduced(
    grad: np.ndarray, shape: Tuple[int, ...], axis, keepdims: bool
) -> np.ndarray:
    """Broadcast a reduced gradient back to the pre-reduction shape."""
    grad = np.asarray(grad, dtype=np.float64)
    if axis is None:
        return np.broadcast_to(grad.reshape((1,) * len(shape)), shape).copy()
    axes = _normalize_axes(axis, len(shape))
    if not keepdims:
        for a in sorted(axes):
            grad = np.expand_dims(grad, axis=a)
    return np.broadcast_to(grad, shape).copy()
