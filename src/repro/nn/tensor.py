"""Reverse-mode autograd on numpy arrays, with a lazy fused engine.

This is the substrate that replaces PyTorch for this reproduction: a
:class:`Tensor` wrapping a float64 numpy array, recording the operations
applied to it, and computing exact gradients with :meth:`Tensor.backward`.
The op set is exactly what the GNN stack needs — dense algebra,
activations, reductions, indexed gather/scatter — nothing speculative.

Two execution engines share this class:

- the **lazy engine** (default): operators record
  :class:`~repro.nn.lazyir.LazyNode` graphs instead of computing;
  realization happens at sync points (``.data`` / ``.numpy()`` /
  ``.item()`` access, comparisons, ``backward()``), where the scheduler
  in :mod:`repro.nn.realize` fuses elementwise/reduce chains into
  single kernels over arena-recycled temporaries. Autograd records
  gradient formulas as nodes in the *same* graph (``_vjp`` closures),
  so backward passes fuse too and a whole training step realizes in one
  batched execution.
- the **eager engine** (inside :func:`eager`): the original
  op-at-a-time numpy path, kept verbatim as the equivalence oracle.

The two are **bitwise identical** — lazy kernels replay the exact numpy
call sequence of the eager ops (``tests/test_nn_lazy_equivalence.py``
fuzzes this contract). One knowing divergence: the eager path also
materializes ``.grad`` on tensors with ``requires_grad=False`` whose
closures happen to fire; the lazy path skips them (nothing observes
those gradients, and chaining graph nodes onto long-lived constant
tensors — cached training targets, say — would grow without bound).

Gradient checks for every op live in ``tests/test_nn_tensor.py``
(hypothesis-driven finite-difference comparisons).
"""

from __future__ import annotations

import contextlib
import math
from typing import Callable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.exceptions import ModelError
from repro.nn import lazyir
from repro.nn import realize as _realize_mod
from repro.nn.backends.numpy_backend import rowwise_matmul  # noqa: F401
# (re-exported: rowwise_matmul moved to the backend with the other
# kernels; callers keep importing it from here)

ArrayLike = Union[float, int, Sequence, np.ndarray, "Tensor"]

_GRAD_ENABLED = True
_BATCH_INVARIANT = False
_LAZY_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def batch_invariant():
    """Context manager selecting batch-invariant matmul kernels.

    BLAS gemm picks different blocking (and therefore different rounding)
    depending on the row count, so row ``i`` of ``A @ W`` can differ in
    the last ulp between a 1-row and an N-row ``A``. Inside this context
    matmuls run through :func:`rowwise_matmul`, whose per-row result is
    independent of every other row — the property the serving layer needs
    so micro-batched inference is bit-identical to single-request
    inference regardless of how requests were coalesced.

    The lazy engine captures this flag when the matmul is *recorded*,
    not when the graph is realized, matching eager semantics even when
    results are forced after the context exits (serving's ``predict``).
    """
    global _BATCH_INVARIANT
    previous = _BATCH_INVARIANT
    _BATCH_INVARIANT = True
    try:
        yield
    finally:
        _BATCH_INVARIANT = previous


def is_batch_invariant() -> bool:
    """Whether matmuls currently use the batch-invariant kernel."""
    return _BATCH_INVARIANT


@contextlib.contextmanager
def eager():
    """Context manager running ops on the eager engine.

    The eager path computes each op immediately with per-op closures —
    the original implementation, retained as the bitwise oracle for the
    lazy engine and for debugging (values exist as soon as the op runs).
    """
    global _LAZY_ENABLED
    previous = _LAZY_ENABLED
    _LAZY_ENABLED = False
    try:
        yield
    finally:
        _LAZY_ENABLED = previous


def is_lazy_enabled() -> bool:
    """Whether operations currently record lazy graphs (vs eager)."""
    return _LAZY_ENABLED


_SCALAR_TYPES = (int, float, np.integer, np.floating)


def _normalize_exponent(exponent) -> float:
    """Validate a ``**`` exponent: python scalars, numpy scalars, and
    0-d numeric arrays normalize to float; everything else (tensors,
    arrays with dimensions, complex) raises ``TypeError``."""
    if isinstance(exponent, (bool, np.bool_)):
        raise TypeError("tensor exponent must be a real scalar, got bool")
    if isinstance(exponent, _SCALAR_TYPES):
        return float(exponent)
    if (
        isinstance(exponent, np.ndarray)
        and exponent.ndim == 0
        and exponent.dtype.kind in "iuf"
    ):
        return float(exponent)
    raise TypeError(
        "tensor exponent must be a scalar or 0-d numeric array, got "
        f"{type(exponent).__name__}"
    )


class Tensor:
    """A numpy array with reverse-mode automatic differentiation.

    Attributes
    ----------
    data:
        The underlying float64 array. On the lazy engine this is a sync
        point: accessing it realizes the recorded graph.
    grad:
        Accumulated gradient (same shape as ``data``) after
        :meth:`backward`; ``None`` before. Realized lazily on access.
    requires_grad:
        Whether gradients flow into this tensor.
    """

    __slots__ = (
        "_data",
        "_node",
        "_grad",
        "_grad_node",
        "requires_grad",
        "_backward",
        "_vjp",
        "_parents",
    )

    def __init__(self, data: ArrayLike, requires_grad: bool = False):
        if isinstance(data, Tensor):
            self._data = data._data
            self._node = data._node
            if self._data is None and not _LAZY_ENABLED:
                self._data = data.data
        else:
            self._data = np.asarray(data, dtype=np.float64)
            self._node = None
        self._grad: Optional[np.ndarray] = None
        self._grad_node = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._vjp = None
        self._parents: Tuple["Tensor", ...] = ()

    # ------------------------------------------------------------------
    # Data access (lazy sync points)
    # ------------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        """The concrete array; realizes the lazy graph when needed."""
        if self._data is None:
            _realize_mod.realize([self._node])
            self._data = self._node.buffer
        return self._data

    @data.setter
    def data(self, value) -> None:
        self._data = np.asarray(value, dtype=np.float64)
        self._node = None

    @property
    def grad(self) -> Optional[np.ndarray]:
        """Accumulated gradient; realizes a pending lazy chain."""
        if self._grad_node is not None:
            _realize_mod.realize([self._grad_node])
            self._grad = self._grad_node.buffer
            self._grad_node = None
        return self._grad

    @grad.setter
    def grad(self, value) -> None:
        self._grad = value
        self._grad_node = None

    def _lazy_node(self):
        """This tensor's IR node (a buffer wrapper for concrete data)."""
        node = self._node
        if node is None:
            node = lazyir.buffer(self._data)
            self._node = node
        return node

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        """Array shape (known without realizing)."""
        return self._data.shape if self._data is not None else self._node.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return len(self.shape)

    @property
    def size(self) -> int:
        """Total element count."""
        shape = self.shape
        return math.prod(shape) if shape else 1

    def numpy(self) -> np.ndarray:
        """A defensive copy of the underlying array."""
        return self.data.copy()

    def item(self) -> float:
        """The scalar value (raises if not 1-element)."""
        if self.size != 1:
            raise ModelError(f"item() on tensor of size {self.size}")
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """A view of the data cut off from the graph (no realization)."""
        out = Tensor.__new__(Tensor)
        out._data = self._data
        out._node = self._node
        out._grad = None
        out._grad_node = None
        out.requires_grad = False
        out._backward = None
        out._vjp = None
        out._parents = ()
        return out

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self._grad = None
        self._grad_node = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data)
        out.requires_grad = requires
        if requires:
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.shape:
            grad = _unbroadcast(grad, self.shape)
        if self._grad_node is not None:
            # Mixed-engine graph: fold the eager contribution into the
            # pending lazy chain in arrival order.
            self._grad_node = lazyir.alu(
                "add", self._grad_node, lazyir.buffer(grad)
            )
            return
        # No defensive copy: backward closures hand over arrays they do
        # not reuse, and accumulation allocates (`self.grad + grad`)
        # rather than mutating, so aliasing a pass-through gradient is
        # safe. Consumers that mutate gradients in place (the clippers
        # in repro.nn.optim) dedup by array identity and fall back to
        # an out-of-place scale for non-writeable views.
        self._grad = grad if self._grad is None else self._grad + grad

    def _acc_node(self, gnode) -> None:
        """Accumulate a lazy gradient node (lazy-engine _accumulate).

        Deliberately skips tensors without ``requires_grad``: the eager
        closures do write ``.grad`` on such tensors, but nothing reads
        them, and extending node chains onto long-lived constants every
        step would leak graph memory.
        """
        if not self.requires_grad:
            return
        if gnode.shape != self.shape:
            gnode = _unbroadcast_node(gnode, self.shape)
        if self._grad is not None:
            # Seed with the previous backward's realized gradient so the
            # accumulation order matches eager: (old + g1) + g2.
            self._grad_node = lazyir.alu(
                "add", lazyir.buffer(self._grad), gnode
            )
            self._grad = None
        elif self._grad_node is not None:
            self._grad_node = lazyir.alu("add", self._grad_node, gnode)
        else:
            self._grad_node = gnode

    def _pending_grad_node(self):
        if self._grad_node is not None:
            return self._grad_node
        if self._grad is not None:
            return lazyir.buffer(self._grad)
        return None

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (scalar outputs expect the default).
        On the lazy engine the whole pass records gradient nodes, then
        this tensor's value and every leaf gradient realize in a single
        fused execution.
        """
        if not self.requires_grad:
            raise ModelError("backward() on a tensor without requires_grad")
        my_shape = self.shape
        if grad is None:
            if self.size != 1:
                raise ModelError(
                    "backward() without an explicit gradient requires a "
                    "scalar output"
                )
            grad = np.ones(my_shape, dtype=np.float64)
        else:
            # Copy: the seed gradient may be caller-owned, and
            # _accumulate no longer copies.
            grad = np.array(
                grad.data if isinstance(grad, Tensor) else grad,
                dtype=np.float64,
            )
            if grad.shape != my_shape:
                raise ModelError(
                    f"gradient shape {grad.shape} != output shape {my_shape}"
                )

        # Iterative post-order, visiting parents in the same order as
        # the recursive formulation (gradient accumulation order — and
        # therefore bitwise output — depends on it).
        order: List[Tensor] = []
        seen: Set[int] = set()
        stack: List[Tuple["Tensor", bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in reversed(node._parents):
                stack.append((parent, False))
        self._accumulate(grad)
        for node in reversed(order):
            if node._vjp is not None:
                gnode = node._pending_grad_node()
                if gnode is not None:
                    node._vjp(gnode)
            elif node._backward is not None and node.grad is not None:
                node._backward(node.grad)

        # Batch-realize this tensor's value and all leaf gradients in
        # one plan so forward and backward fuse across the whole step.
        targets = []
        if self._data is None and self._node is not None:
            targets.append(self._node)
        leaves = []
        for node in order:
            if (
                node._vjp is None
                and node._backward is None
                and node.requires_grad
                and node._grad_node is not None
            ):
                leaves.append(node)
                targets.append(node._grad_node)
        if targets:
            _realize_mod.realize(targets)
            if self._data is None and self._node is not None:
                self._data = self._node.buffer
            for node in leaves:
                node._grad = node._grad_node.buffer
                node._grad_node = None

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        if _LAZY_ENABLED:
            operand, other_t = _lazy_operand(other)
            node = lazyir.alu("add", self._lazy_node(), operand)

            def vjp(g) -> None:
                self._acc_node(g)
                if other_t is not None:
                    other_t._acc_node(g)

            return _lazy_result(node, _parents_of(self, other_t), vjp)

        other = _as_tensor(other)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(grad)

        return Tensor._make(self.data + other.data, (self, other), backward)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        if _LAZY_ENABLED:
            operand, other_t = _lazy_operand(other)
            node = lazyir.alu("sub", self._lazy_node(), operand)

            def vjp(g) -> None:
                self._acc_node(g)
                if other_t is not None:
                    other_t._acc_node(lazyir.alu1("neg", g))

            return _lazy_result(node, _parents_of(self, other_t), vjp)

        other = _as_tensor(other)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(-grad)

        return Tensor._make(self.data - other.data, (self, other), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return _as_tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        if _LAZY_ENABLED:
            operand, other_t = _lazy_operand(other)
            self_node = self._lazy_node()
            node = lazyir.alu("mul", self_node, operand)

            def vjp(g) -> None:
                self._acc_node(lazyir.alu("mul", g, operand))
                if other_t is not None:
                    other_t._acc_node(lazyir.alu("mul", g, self_node))

            return _lazy_result(node, _parents_of(self, other_t), vjp)

        other = _as_tensor(other)
        self_data, other_data = self.data, other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other_data)
            other._accumulate(grad * self_data)

        return Tensor._make(self_data * other_data, (self, other), backward)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        if _LAZY_ENABLED:
            operand, other_t = _lazy_operand(other)
            self_node = self._lazy_node()
            node = lazyir.alu("div", self_node, operand)

            def vjp(g) -> None:
                self._acc_node(lazyir.alu("div", g, operand))
                if other_t is not None:
                    other_node = operand  # a LazyNode when other_t exists
                    other_t._acc_node(
                        lazyir.alu(
                            "div",
                            lazyir.alu("mul", lazyir.alu1("neg", g), self_node),
                            lazyir.alu("pow", other_node, 2.0),
                        )
                    )

            return _lazy_result(node, _parents_of(self, other_t), vjp)

        other = _as_tensor(other)
        self_data, other_data = self.data, other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other_data)
            other._accumulate(-grad * self_data / other_data**2)

        return Tensor._make(self_data / other_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return _as_tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        if _LAZY_ENABLED:
            node = lazyir.alu1("neg", self._lazy_node())

            def vjp(g) -> None:
                self._acc_node(lazyir.alu1("neg", g))

            return _lazy_result(node, (self,), vjp)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __pow__(self, exponent) -> "Tensor":
        exponent = _normalize_exponent(exponent)
        if _LAZY_ENABLED:
            self_node = self._lazy_node()
            node = lazyir.alu("pow", self_node, exponent)

            def vjp(g) -> None:
                self._acc_node(
                    lazyir.alu(
                        "mul",
                        lazyir.alu("mul", g, exponent),
                        lazyir.alu("pow", self_node, exponent - 1),
                    )
                )

            return _lazy_result(node, (self,), vjp)

        self_data = self.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self_data ** (exponent - 1))

        return Tensor._make(self_data**exponent, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = _as_tensor(other)
        if self.ndim != 2 or other.ndim != 2:
            raise ModelError("matmul supports 2-D tensors only")
        if _LAZY_ENABLED:
            self_node, other_node = self._lazy_node(), other._lazy_node()
            # Batch-invariant mode captured at record time (see
            # batch_invariant()): realizing later must not change kernels.
            node = lazyir.matmul_node(self_node, other_node, _BATCH_INVARIANT)

            def vjp(g) -> None:
                self._acc_node(lazyir.matmul_nt(g, other_node))
                other._acc_node(lazyir.matmul_tn(self_node, g))

            return _lazy_result(node, (self, other), vjp)

        self_data, other_data = self.data, other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad @ other_data.T)
            other._accumulate(self_data.T @ grad)

        product = (
            rowwise_matmul(self_data, other_data)
            if _BATCH_INVARIANT
            else self_data @ other_data
        )
        return Tensor._make(product, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        if _LAZY_ENABLED:
            node = lazyir.alu1("exp", self._lazy_node())

            def vjp(g) -> None:
                self._acc_node(lazyir.alu("mul", g, node))

            return _lazy_result(node, (self,), vjp)

        result = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * result)

        return Tensor._make(result, (self,), backward)

    def log(self) -> "Tensor":
        """Elementwise natural log."""
        if _LAZY_ENABLED:
            self_node = self._lazy_node()
            node = lazyir.alu1("log", self_node)

            def vjp(g) -> None:
                self._acc_node(lazyir.alu("div", g, self_node))

            return _lazy_result(node, (self,), vjp)

        self_data = self.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self_data)

        return Tensor._make(np.log(self_data), (self,), backward)

    def sqrt(self) -> "Tensor":
        """Elementwise square root."""
        if _LAZY_ENABLED:
            node = lazyir.alu1("sqrt", self._lazy_node())

            def vjp(g) -> None:
                self._acc_node(
                    lazyir.alu("div", g, lazyir.alu("mul", 2.0, node))
                )

            return _lazy_result(node, (self,), vjp)

        result = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / (2.0 * result))

        return Tensor._make(result, (self,), backward)

    def tanh(self) -> "Tensor":
        """Elementwise tanh."""
        if _LAZY_ENABLED:
            node = lazyir.alu1("tanh", self._lazy_node())

            def vjp(g) -> None:
                self._acc_node(
                    lazyir.alu(
                        "mul",
                        g,
                        lazyir.alu("sub", 1.0, lazyir.alu("pow", node, 2.0)),
                    )
                )

            return _lazy_result(node, (self,), vjp)

        result = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - result**2))

        return Tensor._make(result, (self,), backward)

    def sigmoid(self) -> "Tensor":
        """Elementwise logistic sigmoid."""
        if _LAZY_ENABLED:
            self_node = self._lazy_node()
            # Same call sequence as eager: 1 / (1 + exp(-x)).
            node = lazyir.alu(
                "div",
                1.0,
                lazyir.alu(
                    "add", 1.0, lazyir.alu1("exp", lazyir.alu1("neg", self_node))
                ),
            )

            def vjp(g) -> None:
                self._acc_node(
                    lazyir.alu(
                        "mul",
                        lazyir.alu("mul", g, node),
                        lazyir.alu("sub", 1.0, node),
                    )
                )

            return _lazy_result(node, (self,), vjp)

        result = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * result * (1.0 - result))

        return Tensor._make(result, (self,), backward)

    def relu(self) -> "Tensor":
        """Elementwise ReLU."""
        if _LAZY_ENABLED:
            self_node = self._lazy_node()
            mask = lazyir.alu1("gt0", self_node)
            node = lazyir.alu("mul", self_node, mask)

            def vjp(g) -> None:
                self._acc_node(lazyir.alu("mul", g, mask))

            return _lazy_result(node, (self,), vjp)

        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(self.data * mask, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        """Elementwise LeakyReLU (GAT's attention nonlinearity)."""
        if _LAZY_ENABLED:
            self_node = self._lazy_node()
            mask = lazyir.alu1("gt0", self_node)
            slope_grad = lazyir.where_node(mask, 1.0, negative_slope)
            node = lazyir.where_node(
                mask, self_node, lazyir.alu("mul", negative_slope, self_node)
            )

            def vjp(g) -> None:
                self._acc_node(lazyir.alu("mul", g, slope_grad))

            return _lazy_result(node, (self,), vjp)

        mask = self.data > 0
        slope_grad = np.where(mask, 1.0, negative_slope)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * slope_grad)

        return Tensor._make(
            np.where(mask, self.data, negative_slope * self.data),
            (self,),
            backward,
        )

    def abs(self) -> "Tensor":
        """Elementwise absolute value (sign subgradient at 0 is 0)."""
        if _LAZY_ENABLED:
            self_node = self._lazy_node()
            sign = lazyir.alu1("sign", self_node)
            node = lazyir.alu1("abs", self_node)

            def vjp(g) -> None:
                self._acc_node(lazyir.alu("mul", g, sign))

            return _lazy_result(node, (self,), vjp)

        sign = np.sign(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * sign)

        return Tensor._make(np.abs(self.data), (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (all axes when None)."""
        if _LAZY_ENABLED:
            self_shape = self.shape
            node = lazyir.reduce_node("sum", self._lazy_node(), axis, keepdims)

            def vjp(g) -> None:
                self._acc_node(_expand_node(g, self_shape, axis))

            return _lazy_result(node, (self,), vjp)

        self_shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            expanded = _expand_reduced(grad, self_shape, axis, keepdims)
            self._accumulate(expanded)

        return Tensor._make(
            self.data.sum(axis=axis, keepdims=keepdims), (self,), backward
        )

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Mean over ``axis``."""
        if _LAZY_ENABLED:
            self_shape = self.shape
            count = (
                self.size
                if axis is None
                else np.prod(
                    [self_shape[a] for a in _normalize_axes(axis, self.ndim)]
                )
            )
            node = lazyir.reduce_node("mean", self._lazy_node(), axis, keepdims)

            def vjp(g) -> None:
                self._acc_node(
                    lazyir.alu(
                        "div", _expand_node(g, self_shape, axis), float(count)
                    )
                )

            return _lazy_result(node, (self,), vjp)

        self_shape = self.data.shape
        count = (
            self.data.size
            if axis is None
            else np.prod([self_shape[a] for a in _normalize_axes(axis, self.ndim)])
        )

        def backward(grad: np.ndarray) -> None:
            expanded = _expand_reduced(grad, self_shape, axis, keepdims)
            self._accumulate(expanded / count)

        return Tensor._make(
            self.data.mean(axis=axis, keepdims=keepdims), (self,), backward
        )

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Max over ``axis``; gradient splits equally among ties."""
        if _LAZY_ENABLED:
            self_node = self._lazy_node()
            self_shape = self.shape
            node = lazyir.reduce_node("max", self_node, axis, keepdims)

            def vjp(g) -> None:
                expanded_max = _expand_node(node, self_shape, axis)
                mask = lazyir.cast_f8(
                    lazyir.alu("eq", self_node, expanded_max)
                )
                tie_count = lazyir.reduce_node("sum", mask, axis, True)
                expanded_grad = _expand_node(g, self_shape, axis)
                self._acc_node(
                    lazyir.alu(
                        "div",
                        lazyir.alu("mul", expanded_grad, mask),
                        tie_count,
                    )
                )

            return _lazy_result(node, (self,), vjp)

        self_data = self.data
        self_shape = self_data.shape
        result = self_data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded_max = _expand_reduced(
                result if keepdims else np.asarray(result),
                self_shape,
                axis,
                keepdims,
            )
            mask = (self_data == expanded_max).astype(np.float64)
            tie_count = mask.sum(axis=axis, keepdims=True)
            expanded_grad = _expand_reduced(grad, self_shape, axis, keepdims)
            self._accumulate(expanded_grad * mask / tie_count)

        return Tensor._make(result, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        """Reshape (accepts a tuple or varargs)."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        if _LAZY_ENABLED:
            self_shape = self.shape
            resolved = lazyir.resolve_reshape(self_shape, shape)
            node = lazyir.reshape_node(self._lazy_node(), resolved)

            def vjp(g) -> None:
                self._acc_node(lazyir.reshape_node(g, self_shape))

            return _lazy_result(node, (self,), vjp)

        self_shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(self_shape))

        return Tensor._make(self.data.reshape(shape), (self,), backward)

    def transpose(self) -> "Tensor":
        """2-D transpose."""
        if self.ndim != 2:
            raise ModelError("transpose supports 2-D tensors only")
        if _LAZY_ENABLED:
            node = lazyir.transpose_node(self._lazy_node())

            def vjp(g) -> None:
                self._acc_node(lazyir.transpose_node(g))

            return _lazy_result(node, (self,), vjp)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.T)

        return Tensor._make(self.data.T, (self,), backward)

    @property
    def T(self) -> "Tensor":
        """Alias for :meth:`transpose`."""
        return self.transpose()

    def __getitem__(self, key) -> "Tensor":
        if _LAZY_ENABLED:
            self_shape = self.shape
            node = lazyir.getitem_node(self._lazy_node(), key)

            def vjp(g) -> None:
                self._acc_node(lazyir.putadd_node(g, key, self_shape))

            return _lazy_result(node, (self,), vjp)

        self_shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            full = np.zeros(self_shape, dtype=np.float64)
            np.add.at(full, key, grad)
            self._accumulate(full)

        return Tensor._make(self.data[key], (self,), backward)

    # ------------------------------------------------------------------
    # Comparisons (return plain bool arrays; not differentiable).
    # These are lazy sync points: both operands realize.
    # ------------------------------------------------------------------
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > _raw(other)

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < _raw(other)

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= _raw(other)

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= _raw(other)


# ----------------------------------------------------------------------
# Lazy construction helpers
# ----------------------------------------------------------------------
def _lazy_result(node, parents: Tuple[Tensor, ...], vjp) -> Tensor:
    """Wrap an IR node as a Tensor, attaching the vjp when grads flow.

    Hot path of every recorded op — branches explicitly over the 1- and
    2-parent cases instead of spinning up generator frames.
    """
    out = Tensor.__new__(Tensor)
    out._data = None
    out._node = node
    out._grad = None
    out._grad_node = None
    out._backward = None
    if _GRAD_ENABLED and parents:
        n = len(parents)
        p0 = parents[0]
        if n == 1:
            if p0.requires_grad:
                out.requires_grad = True
                out._parents = parents
                out._vjp = vjp
                return out
        elif n == 2:
            p1 = parents[1]
            if p0.requires_grad:
                out.requires_grad = True
                out._parents = parents if p1.requires_grad else (p0,)
                out._vjp = vjp
                return out
            if p1.requires_grad:
                out.requires_grad = True
                out._parents = (p1,)
                out._vjp = vjp
                return out
        else:
            keep = tuple(p for p in parents if p.requires_grad)
            if keep:
                out.requires_grad = True
                out._parents = keep
                out._vjp = vjp
                return out
    out.requires_grad = False
    out._parents = ()
    out._vjp = None
    return out


def _lazy_operand(value):
    """Resolve a binary-op operand to ``(node_or_scalar, tensor_or_None)``.

    Python/numpy scalars inline into the op's structural arg (bitwise
    identical to the eager path's 0-d arrays, cheaper to cache); arrays
    and tensors become graph inputs.
    """
    if isinstance(value, Tensor):
        return value._lazy_node(), value
    if isinstance(value, _SCALAR_TYPES) and not isinstance(
        value, (bool, np.bool_)
    ):
        return float(value), None
    tensor = Tensor(value)
    return tensor._lazy_node(), tensor


def _parents_of(self_t: Tensor, other_t: Optional[Tensor]):
    return (self_t,) if other_t is None else (self_t, other_t)


def _unbroadcast_node(g, shape: Tuple[int, ...]):
    """IR mirror of :func:`_unbroadcast` (same reduction sequence)."""
    while len(g.shape) > len(shape):
        g = lazyir.reduce_node("sum", g, 0, False)
    for axis, dim in enumerate(shape):
        if dim == 1 and g.shape[axis] != 1:
            g = lazyir.reduce_node("sum", g, axis, True)
    if g.shape != shape:
        g = lazyir.reshape_node(g, shape)
    return g


def _expand_node(g, shape: Tuple[int, ...], axis):
    """IR mirror of :func:`_expand_reduced` (reshape + broadcast copy)."""
    rshape = lazyir.reduced_shape(shape, axis, True)
    return lazyir.expand_node(g, rshape, shape)


# ----------------------------------------------------------------------
# Free functions
# ----------------------------------------------------------------------
def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis``."""
    tensors = [_as_tensor(t) for t in tensors]
    if _LAZY_ENABLED:
        node = lazyir.concat_node([t._lazy_node() for t in tensors], axis)
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)
        out_ndim = len(node.shape)

        def vjp(g) -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                slicer = [slice(None)] * out_ndim
                slicer[axis] = slice(int(start), int(stop))
                tensor._acc_node(lazyir.getitem_node(g, tuple(slicer)))

        return _lazy_result(node, tuple(tensors), vjp)

    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, stop)
            tensor._accumulate(grad[tuple(slicer)])

    return Tensor._make(data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``."""
    tensors = [_as_tensor(t) for t in tensors]
    if _LAZY_ENABLED:
        node = lazyir.stack_node([t._lazy_node() for t in tensors], axis)
        out_ndim = len(node.shape)
        norm_axis = axis % out_ndim

        def vjp(g) -> None:
            # Integer indexing == eager's split+squeeze: identical views.
            for i, tensor in enumerate(tensors):
                key = (slice(None),) * norm_axis + (i,)
                tensor._acc_node(lazyir.getitem_node(g, key))

        return _lazy_result(node, tuple(tensors), vjp)

    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, pieces):
            tensor._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(data, tuple(tensors), backward)


def where(condition, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise select: ``condition ? a : b``.

    ``condition`` may be a bool array, anything array-like, or a
    ``Tensor`` (realized and thresholded like ``np.asarray(x, bool)``;
    not differentiable). Gradients propagate through both ``a`` and
    ``b``, masked by the condition.
    """
    a = _as_tensor(a)
    b = _as_tensor(b)
    condition = np.asarray(
        condition.data if isinstance(condition, Tensor) else condition,
        dtype=bool,
    )
    if _LAZY_ENABLED:
        cond_node = lazyir.buffer(condition)
        node = lazyir.where_node(cond_node, a._lazy_node(), b._lazy_node())

        def vjp(g) -> None:
            a._acc_node(lazyir.alu("mul", g, cond_node))
            b._acc_node(
                lazyir.alu("mul", g, lazyir.alu1("not", cond_node))
            )

        return _lazy_result(node, (a, b), vjp)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * condition)
        b._accumulate(grad * ~condition)

    return Tensor._make(np.where(condition, a.data, b.data), (a, b), backward)


def _as_tensor(value: ArrayLike) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def _raw(value: ArrayLike) -> np.ndarray:
    return value.data if isinstance(value, Tensor) else np.asarray(value)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce a broadcast gradient back to ``shape``."""
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _normalize_axes(axis, ndim: int) -> Tuple[int, ...]:
    if axis is None:
        return tuple(range(ndim))
    if isinstance(axis, (int, np.integer)):
        axis = (int(axis),)
    return tuple(a % ndim for a in axis)


def _expand_reduced(
    grad: np.ndarray, shape: Tuple[int, ...], axis, keepdims: bool
) -> np.ndarray:
    """Broadcast a reduced gradient back to the pre-reduction shape."""
    grad = np.asarray(grad, dtype=np.float64)
    if axis is None:
        return np.broadcast_to(grad.reshape((1,) * len(shape)), shape).copy()
    axes = _normalize_axes(axis, len(shape))
    if not keepdims:
        for a in sorted(axes):
            grad = np.expand_dims(grad, axis=a)
    return np.broadcast_to(grad, shape).copy()
