"""Gradient-descent optimizers for model parameters.

The paper trains with Adam; SGD exists as a baseline and for tests.

The Adam step and gradient clipping are allocation-free on the hot
path: :class:`Adam` updates its moments and the parameters in place
through preallocated scratch buffers, and :class:`GradClipper` squares
gradients into reusable buffers. Both are bitwise identical to the
naive allocating formulas (every elementwise operation runs in the
same order on the same values), which the optimizer tests assert.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.exceptions import OptimizationError
from repro.nn.module import Parameter


def clip_grad_norm(parameters, max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clip norm. Parameters without gradients are skipped.
    For repeated clipping of the same parameter list (a training loop),
    :class:`GradClipper` does the same math without per-step
    allocations.
    """
    if max_norm <= 0:
        raise OptimizationError("max_norm must be positive")
    parameters = list(parameters)
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total = float(np.sqrt(sum(float((g**2).sum()) for g in grads)))
    if total > max_norm:
        scale = max_norm / (total + 1e-12)
        _scale_grads_in_place(parameters, scale)
    return total


def _scale_grads_in_place(parameters, scale: float) -> None:
    """Scale each parameter's gradient exactly once.

    Gradient arrays can be shared between parameters or non-writeable
    views (autograd accumulates without copying), so scaling dedups by
    array identity and falls back to an out-of-place multiply when the
    array cannot be written.
    """
    seen = set()
    for param in parameters:
        grad = param.grad
        if grad is None or id(grad) in seen:
            continue
        seen.add(id(grad))
        if grad.flags.writeable:
            grad *= scale
        else:
            param.grad = grad * scale


class GradClipper:
    """Buffer-reusing global-norm gradient clipper.

    Bitwise identical to :func:`clip_grad_norm` — the squared-gradient
    buffer replaces the ``g**2`` temporary but the per-parameter sums
    and their accumulation order are unchanged.
    """

    def __init__(self, parameters: Sequence[Parameter], max_norm: float):
        if max_norm <= 0:
            raise OptimizationError("max_norm must be positive")
        self.parameters: List[Parameter] = list(parameters)
        self.max_norm = max_norm
        self._squares = [np.empty_like(p.data) for p in self.parameters]

    def __call__(self) -> float:
        """Clip in place; returns the pre-clip global norm."""
        total = 0.0
        any_grad = False
        for param, square in zip(self.parameters, self._squares):
            grad = param.grad
            if grad is None:
                continue
            np.multiply(grad, grad, out=square)
            total += float(square.sum())
            any_grad = True
        if not any_grad:
            return 0.0
        total = float(np.sqrt(total))
        if total > self.max_norm:
            scale = self.max_norm / (total + 1e-12)
            _scale_grads_in_place(self.parameters, scale)
        return total


class Optimizer:
    """Base: holds parameters, steps on their ``.grad`` fields."""

    def __init__(self, parameters: Sequence[Parameter], learning_rate: float):
        if learning_rate <= 0:
            raise OptimizationError("learning rate must be positive")
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise OptimizationError("optimizer got no parameters")
        self.learning_rate = learning_rate

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update (override)."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        learning_rate: float = 0.01,
        momentum: float = 0.0,
    ):
        super().__init__(parameters, learning_rate)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            velocity *= self.momentum
            velocity -= self.learning_rate * param.grad
            param.data = param.data + velocity


class Adam(Optimizer):
    """Adam (Kingma & Ba) — the paper's model optimizer.

    The update runs entirely in preallocated buffers, and all state is
    *flat-packed*: parameter data, moments, and scratch each live in
    one contiguous vector, with the per-parameter arrays as views into
    it. When every parameter has a gradient the step collapses to a
    dozen full-width ufunc calls over the flat vectors; parameters
    missing a gradient fall back to the per-parameter loop on the same
    views. Every elementwise operation happens in the same order on
    the same values as the allocating textbook formula, so the
    resulting weights are bitwise identical (asserted by tests).
    """

    def __init__(
        self,
        parameters: Sequence[Parameter],
        learning_rate: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, learning_rate)
        self.beta1, self.beta2 = betas
        self.epsilon = epsilon
        self.weight_decay = weight_decay
        self._step_count = 0
        # Flat packing: parameter data, moments, and scratch live in one
        # contiguous vector each; the per-parameter entries below are
        # views into them. When every parameter has a gradient (the
        # training loop), the whole update is ~12 full-width ufunc calls
        # instead of ~12 per parameter — elementwise on the same values
        # in the same order, so the weights stay bitwise identical.
        sizes = [p.data.size for p in self.parameters]
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        total = int(offsets[-1])
        self._flat_param = np.empty(total, dtype=np.float64)
        self._flat_grad = np.empty(total, dtype=np.float64)
        self._flat_m = np.zeros(total, dtype=np.float64)
        self._flat_v = np.zeros(total, dtype=np.float64)
        self._flat_a = np.empty(total, dtype=np.float64)
        self._flat_b = np.empty(total, dtype=np.float64)
        self._m = []
        self._v = []
        self._scratch_a = []
        self._scratch_b = []
        self._grad_slots = []
        for param, size, off in zip(self.parameters, sizes, offsets):
            lo, hi = int(off), int(off) + size
            shape = param.data.shape
            self._flat_param[lo:hi] = param.data.reshape(-1)
            # Repoint the parameter at its flat segment so the fused
            # update is visible through ``param.data`` (the setter wraps
            # without copying).
            param.data = self._flat_param[lo:hi].reshape(shape)
            self._m.append(self._flat_m[lo:hi].reshape(shape))
            self._v.append(self._flat_v[lo:hi].reshape(shape))
            self._scratch_a.append(self._flat_a[lo:hi].reshape(shape))
            self._scratch_b.append(self._flat_b[lo:hi].reshape(shape))
            self._grad_slots.append(self._flat_grad[lo:hi].reshape(shape))

    def step(self) -> None:
        self._step_count += 1
        grads = [p.grad for p in self.parameters]
        if all(g is not None for g in grads):
            for slot, grad in zip(self._grad_slots, grads):
                np.copyto(slot, grad)
            self._update(
                self._flat_param, self._flat_grad, self._flat_m,
                self._flat_v, self._flat_a, self._flat_b,
            )
            return
        for i, (param, grad) in enumerate(zip(self.parameters, grads)):
            if grad is None:
                continue
            self._update(
                param.data, grad, self._m[i], self._v[i],
                self._scratch_a[i], self._scratch_b[i],
            )

    def _update(self, data, grad, m, v, a, b) -> None:
        t = self._step_count
        beta1, beta2 = self.beta1, self.beta2
        bias1 = 1 - beta1**t
        bias2 = 1 - beta2**t
        if self.weight_decay > 0:
            # grad = grad + weight_decay * param (into scratch b,
            # which is free until the m_hat stage).
            np.multiply(data, self.weight_decay, out=b)
            np.add(grad, b, out=b)
            grad = b
        # m = beta1 * m + (1 - beta1) * grad
        np.multiply(m, beta1, out=m)
        np.multiply(grad, 1 - beta1, out=a)
        np.add(m, a, out=m)
        # v = beta2 * v + (1 - beta2) * grad**2
        np.multiply(v, beta2, out=v)
        np.multiply(grad, grad, out=a)
        np.multiply(a, 1 - beta2, out=a)
        np.add(v, a, out=v)
        # denom = sqrt(v / bias2) + epsilon   (scratch a)
        np.divide(v, bias2, out=a)
        np.sqrt(a, out=a)
        np.add(a, self.epsilon, out=a)
        # update = learning_rate * (m / bias1) / denom  (scratch b;
        # grad no longer aliases b past this point)
        np.divide(m, bias1, out=b)
        np.multiply(b, self.learning_rate, out=b)
        np.divide(b, a, out=b)
        np.subtract(data, b, out=data)
