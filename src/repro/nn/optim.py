"""Gradient-descent optimizers for model parameters.

The paper trains with Adam; SGD exists as a baseline and for tests.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.exceptions import OptimizationError
from repro.nn.module import Parameter


def clip_grad_norm(parameters, max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clip norm. Parameters without gradients are skipped.
    """
    if max_norm <= 0:
        raise OptimizationError("max_norm must be positive")
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total = float(np.sqrt(sum(float((g**2).sum()) for g in grads)))
    if total > max_norm:
        scale = max_norm / (total + 1e-12)
        for grad in grads:
            grad *= scale
    return total


class Optimizer:
    """Base: holds parameters, steps on their ``.grad`` fields."""

    def __init__(self, parameters: Sequence[Parameter], learning_rate: float):
        if learning_rate <= 0:
            raise OptimizationError("learning rate must be positive")
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise OptimizationError("optimizer got no parameters")
        self.learning_rate = learning_rate

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update (override)."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        learning_rate: float = 0.01,
        momentum: float = 0.0,
    ):
        super().__init__(parameters, learning_rate)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            velocity *= self.momentum
            velocity -= self.learning_rate * param.grad
            param.data = param.data + velocity


class Adam(Optimizer):
    """Adam (Kingma & Ba) — the paper's model optimizer."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        learning_rate: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, learning_rate)
        self.beta1, self.beta2 = betas
        self.epsilon = epsilon
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        for i, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay > 0:
                grad = grad + self.weight_decay * param.data
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * grad**2
            m_hat = self._m[i] / (1 - self.beta1**t)
            v_hat = self._v[i] / (1 - self.beta2**t)
            param.data = param.data - self.learning_rate * m_hat / (
                np.sqrt(v_hat) + self.epsilon
            )
