"""The closed-loop data flywheel: serving traffic feeds training.

Serving writes every answered prediction into a rotating replay log
(:mod:`~repro.flywheel.replay`); a cycle turns that log into a better
model: rank the logged instances (:mod:`~repro.flywheel.selector`),
re-optimize the valuable ones warm-started from what was served
(:mod:`~repro.flywheel.labeler`), fold the new labels into the dataset
behind the paper's SDP filter and train a candidate
(:mod:`~repro.flywheel.retrain`), gate it against the incumbent on a
held-out evaluation (:mod:`~repro.flywheel.promotion`), and — only if
it wins — publish it to the version store
(:mod:`~repro.flywheel.versions`), where the serving-side watcher
(:mod:`~repro.flywheel.watcher`) hot-swaps it into the live service.
:mod:`~repro.flywheel.loop` composes the stages into one deterministic,
checkpoint-resumable cycle (``repro flywheel --once``).
"""

from repro.flywheel.labeler import (
    SOURCE_FLYWHEEL,
    RelabelConfig,
    relabel_candidates,
)
from repro.flywheel.loop import FlywheelConfig, run_cycle, run_cycles
from repro.flywheel.promotion import (
    PromotionConfig,
    PromotionDecision,
    gate_candidate,
)
from repro.flywheel.replay import ReplayLog, ReplayRecord
from repro.flywheel.retrain import (
    RetrainConfig,
    RetrainReport,
    fit_model,
    fold_labels,
    train_candidate,
)
from repro.flywheel.selector import (
    Candidate,
    SelectionConfig,
    select_candidates,
)
from repro.flywheel.versions import VersionStore
from repro.flywheel.watcher import ModelWatcher

__all__ = [
    "SOURCE_FLYWHEEL",
    "RelabelConfig",
    "relabel_candidates",
    "FlywheelConfig",
    "run_cycle",
    "run_cycles",
    "PromotionConfig",
    "PromotionDecision",
    "gate_candidate",
    "ReplayLog",
    "ReplayRecord",
    "RetrainConfig",
    "RetrainReport",
    "fit_model",
    "fold_labels",
    "train_candidate",
    "Candidate",
    "SelectionConfig",
    "select_candidates",
    "VersionStore",
    "ModelWatcher",
]
