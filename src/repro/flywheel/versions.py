"""Versioned model store with an atomic current-version pointer.

The flywheel's contract with serving is a directory:

.. code-block:: text

    store/
      versions/
        v0001.json      # immutable checkpoint (save_checkpoint format)
        v0002.json
      candidates/
        cand_0002.json  # staged, not yet promoted
      CURRENT.json      # {"version": 2, "path": "...", "fingerprint": "..."}
      promotions/
        v0002.json      # promotion manifest (gate evidence)

Candidates are *staged* outside ``versions/`` and only published (moved
into ``versions/`` and pointed at by ``CURRENT.json``) when the
promotion gate passes — a rejected candidate leaves the store's
published surface byte-identical. ``CURRENT.json`` is written with an
atomic replace, so a serving-side watcher polling it either sees the old
pointer or the new one, never a torn file.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Optional, Union

from repro.exceptions import FlywheelError
from repro.serving.registry import (
    load_checkpoint,
    model_fingerprint,
    save_checkpoint,
)
from repro.utils.logging import get_logger
from repro.utils.serialization import load_json, save_json

logger = get_logger(__name__)

POINTER_NAME = "CURRENT.json"


class VersionStore:
    """Filesystem layout and pointer discipline for flywheel models."""

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @property
    def pointer_path(self) -> Path:
        """The atomic current-version pointer file."""
        return self.directory / POINTER_NAME

    @property
    def versions_dir(self) -> Path:
        return self.directory / "versions"

    @property
    def candidates_dir(self) -> Path:
        return self.directory / "candidates"

    @property
    def promotions_dir(self) -> Path:
        return self.directory / "promotions"

    def version_path(self, version: int) -> Path:
        return self.versions_dir / f"v{version:04d}.json"

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def versions(self) -> List[int]:
        """Published version numbers, ascending."""
        if not self.versions_dir.is_dir():
            return []
        found = []
        for path in self.versions_dir.iterdir():
            name = path.name
            if name.startswith("v") and name.endswith(".json"):
                try:
                    found.append(int(name[1:-5]))
                except ValueError:
                    continue
        return sorted(found)

    def current(self) -> Optional[dict]:
        """The pointer payload, or ``None`` when nothing is published."""
        if not self.pointer_path.is_file():
            return None
        payload = load_json(self.pointer_path)
        for field in ("version", "path", "fingerprint"):
            if field not in payload:
                raise FlywheelError(
                    f"version pointer {self.pointer_path} missing "
                    f"field {field!r}"
                )
        return payload

    def load_current(self):
        """Load the currently pointed-at model (model, payload)."""
        payload = self.current()
        if payload is None:
            raise FlywheelError(
                f"no current version published under {self.directory}"
            )
        model = load_checkpoint(payload["path"])
        return model, payload

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def publish(self, model, final_loss: Optional[float] = None) -> dict:
        """Checkpoint ``model`` as the next version and repoint CURRENT.

        The checkpoint is fully written before the pointer moves, so a
        crash between the two leaves the previous version serving.
        Returns the new pointer payload.
        """
        version = (self.versions()[-1] + 1) if self.versions() else 1
        path = self.version_path(version)
        self.versions_dir.mkdir(parents=True, exist_ok=True)
        save_checkpoint(model, path, final_loss=final_loss)
        pointer = {
            "version": version,
            "path": str(path),
            "fingerprint": model_fingerprint(model),
        }
        save_json(pointer, self.pointer_path)
        logger.info(
            "published model version v%04d (fingerprint %s)",
            version,
            pointer["fingerprint"],
        )
        return pointer

    def stage_candidate(self, model, tag: str,
                        final_loss: Optional[float] = None) -> Path:
        """Checkpoint a not-yet-promoted candidate outside ``versions/``."""
        self.candidates_dir.mkdir(parents=True, exist_ok=True)
        path = self.candidates_dir / f"cand_{tag}.json"
        save_checkpoint(model, path, final_loss=final_loss)
        return path

    def promote_candidate(self, candidate_path: Union[str, Path]) -> dict:
        """Publish a staged candidate checkpoint as the next version.

        The staged file is moved (atomic rename on the same filesystem)
        into ``versions/`` and the pointer is repointed at it.
        """
        candidate_path = Path(candidate_path)
        if not candidate_path.is_file():
            raise FlywheelError(
                f"candidate checkpoint not found: {candidate_path}"
            )
        model = load_checkpoint(candidate_path)
        version = (self.versions()[-1] + 1) if self.versions() else 1
        path = self.version_path(version)
        self.versions_dir.mkdir(parents=True, exist_ok=True)
        os.replace(candidate_path, path)
        pointer = {
            "version": version,
            "path": str(path),
            "fingerprint": model_fingerprint(model),
        }
        save_json(pointer, self.pointer_path)
        logger.info(
            "promoted candidate %s as v%04d (fingerprint %s)",
            candidate_path.name,
            version,
            pointer["fingerprint"],
        )
        return pointer

    def record_promotion(self, version: int, manifest: dict) -> Path:
        """Persist the gate's evidence next to the version it promoted."""
        self.promotions_dir.mkdir(parents=True, exist_ok=True)
        path = self.promotions_dir / f"v{version:04d}.json"
        save_json(manifest, path)
        return path

    def describe(self) -> dict:
        """JSON-safe store summary."""
        return {
            "directory": str(self.directory),
            "versions": self.versions(),
            "current": self.current(),
        }
