"""The promotion gate: a candidate earns its way into serving.

Both models run the *same* held-out evaluation — identically seeded
:class:`~repro.pipeline.evaluation.WarmStartEvaluator` sweeps (batched
engine), so the random-arm draws and optimizer budgets match arm for
arm. The score is the mean approximation ratio the warm-started
optimizer reaches from each model's predicted parameters
(``mean_strategy_ar``), i.e. exactly the quantity serving exists to
maximize.

Decision rule: promote iff

.. code-block:: text

    candidate_score >= incumbent_score - margin

``margin`` is the regression tolerance — ``0.0`` demands the candidate
be at least as good; a small positive margin accepts a statistical tie
in exchange for the fresher training data. An *exact* tie promotes (the
candidate has seen strictly more data), and because both scores are
deterministic functions of (models, eval graphs, seed), the tie case is
itself deterministic: re-running the gate flips nothing.

The gate only ever *returns* a decision; publishing the winner is the
caller's job (see :mod:`repro.flywheel.versions`), which is what keeps a
rejected candidate from leaving any trace in the store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.exceptions import FlywheelError
from repro.graphs.graph import Graph
from repro.maxcut.cache import ProblemCache
from repro.pipeline.evaluation import WarmStartEvaluator
from repro.serving.registry import model_fingerprint
from repro.utils.logging import get_logger

logger = get_logger(__name__)


@dataclass(frozen=True)
class PromotionConfig:
    """Knobs for one gate evaluation."""

    #: Optimizer iterations per evaluation arm.
    eval_iters: int = 40
    learning_rate: float = 0.05
    #: Regression tolerance: candidate may trail the incumbent by at
    #: most this much mean AR and still promote.
    margin: float = 0.0
    seed: int = 0
    batched: bool = True
    max_bucket: int = 64

    def __post_init__(self):
        if self.eval_iters < 1:
            raise FlywheelError("eval_iters must be >= 1")
        if self.margin < 0.0:
            raise FlywheelError(f"margin must be >= 0, got {self.margin}")


@dataclass
class PromotionDecision:
    """The gate's verdict plus the evidence behind it."""

    promote: bool
    candidate_score: float
    incumbent_score: Optional[float]
    margin: float
    candidate_fingerprint: str
    incumbent_fingerprint: Optional[str]
    eval_graphs: int
    reason: str

    def manifest(self) -> dict:
        """JSON-safe record for the promotion manifest."""
        return {
            "promote": self.promote,
            "candidate_score": self.candidate_score,
            "incumbent_score": self.incumbent_score,
            "margin": self.margin,
            "candidate_fingerprint": self.candidate_fingerprint,
            "incumbent_fingerprint": self.incumbent_fingerprint,
            "eval_graphs": self.eval_graphs,
            "reason": self.reason,
        }


def _score(
    model,
    graphs: Sequence[Graph],
    config: PromotionConfig,
    problem_cache: Optional[ProblemCache],
) -> float:
    """Mean warm-started AR under a freshly seeded evaluator.

    A *new* evaluator per model is deliberate: both sweeps consume
    identical random-arm streams, so the comparison is paired.
    """
    evaluator = WarmStartEvaluator(
        p=model.p,
        optimizer_iters=config.eval_iters,
        learning_rate=config.learning_rate,
        rng=config.seed,
        batched=config.batched,
        max_bucket=config.max_bucket,
        problem_cache=problem_cache,
    )
    result = evaluator.evaluate_model(graphs, model)
    return float(result.summary()["mean_strategy_ar"])


def gate_candidate(
    candidate,
    incumbent,
    eval_graphs: Sequence[Graph],
    config: Optional[PromotionConfig] = None,
    problem_cache: Optional[ProblemCache] = None,
) -> PromotionDecision:
    """Decide whether ``candidate`` replaces ``incumbent``.

    ``incumbent`` may be ``None`` (cold start): the candidate promotes
    unconditionally — there is nothing to regress against.
    """
    if config is None:
        config = PromotionConfig()
    if not eval_graphs:
        raise FlywheelError("promotion gate needs a non-empty eval set")
    cache = problem_cache if problem_cache is not None else ProblemCache()

    candidate_score = _score(candidate, eval_graphs, config, cache)
    candidate_fp = model_fingerprint(candidate)
    if incumbent is None:
        decision = PromotionDecision(
            promote=True,
            candidate_score=candidate_score,
            incumbent_score=None,
            margin=config.margin,
            candidate_fingerprint=candidate_fp,
            incumbent_fingerprint=None,
            eval_graphs=len(eval_graphs),
            reason="cold start: no incumbent to beat",
        )
        logger.info("promotion gate: %s", decision.reason)
        return decision

    incumbent_score = _score(incumbent, eval_graphs, config, cache)
    promote = candidate_score >= incumbent_score - config.margin
    delta = candidate_score - incumbent_score
    if promote:
        reason = (
            f"candidate {candidate_score:.4f} vs incumbent "
            f"{incumbent_score:.4f} (delta {delta:+.4f}, "
            f"margin {config.margin:.4f}): promoted"
        )
    else:
        reason = (
            f"candidate {candidate_score:.4f} trails incumbent "
            f"{incumbent_score:.4f} by more than margin "
            f"{config.margin:.4f}: rejected"
        )
    logger.info("promotion gate: %s", reason)
    return PromotionDecision(
        promote=promote,
        candidate_score=candidate_score,
        incumbent_score=incumbent_score,
        margin=config.margin,
        candidate_fingerprint=candidate_fp,
        incumbent_fingerprint=model_fingerprint(incumbent),
        eval_graphs=len(eval_graphs),
        reason=reason,
    )
