"""Background relabeling: turn served warm starts into real labels.

Each selected candidate is re-optimized with the batched statevector
engine (:mod:`repro.qaoa.batched`), *warm-started from the parameters
the service actually served* — the optimizer can only improve on what
the user got, and the improvement is exactly the signal the next model
version trains on.

Execution rides the fault-tolerant runtime end to end:

- Candidates are labeled in shard-sized waves under a
  :class:`~repro.data.checkpoint.LabelingCheckpoint`: every completed
  shard is durably on disk before the next begins, so a killed cycle
  resumes from its checkpoint directory and produces byte-identical
  records (relabeling is deterministic — the warm start is data, not
  randomness — so a re-run of any shard rewrites the same bytes).
- Within a shard, candidates are bucketed by node count and each bucket
  runs as one executor task — one ``(K, 2^n)`` statevector stack through
  the lock-step Adam optimizer — under the executor's
  :class:`~repro.runtime.RetryPolicy` and (in tests/CI) its
  deterministic :class:`~repro.runtime.FaultInjector`.

The checkpoint fingerprint covers everything that shapes the output:
the optimizer configuration *and* the full candidate worklist including
the served warm-start parameters. Resuming against a directory written
for a different worklist fails loudly instead of mixing labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.data.checkpoint import LabelingCheckpoint
from repro.data.dataset import QAOARecord, record_to_payload
from repro.data.generation import (
    LABEL_METHODS,
    canonical_representative,
    canonicalize_angles,
    label_graph_analytic,
)
from repro.exceptions import ExecutionError, FlywheelError
from repro.flywheel.selector import MAX_LABELABLE_NODES, Candidate
from repro.maxcut.cache import ProblemCache
from repro.maxcut.problem import MaxCutProblem
from repro.qaoa.batched import BatchedAdamOptimizer, BatchedQAOASimulator
from repro.qaoa.simulator import QAOASimulator
from repro.runtime import FaultInjector, ParallelExecutor, RetryPolicy
from repro.utils.logging import get_logger

logger = get_logger(__name__)

#: Provenance tag of labels produced by the flywheel.
SOURCE_FLYWHEEL = "flywheel"


@dataclass(frozen=True)
class RelabelConfig:
    """Knobs for one relabeling pass.

    The first block shapes the *output* (it is fingerprinted into the
    checkpoint manifest); the second is pure execution and may differ
    between a run and its resume.
    """

    p: int = 1
    optimizer_iters: int = 120
    learning_rate: float = 0.05
    tol: float = 0.0
    seed: int = 0
    #: ``"analytic-p1"`` labels buckets beyond the dense statevector
    #: bound on the closed-form p=1 surface instead of refusing them.
    label_method: str = "statevector"
    #: Candidates per durable checkpoint shard.
    checkpoint_every: int = 16
    #: Max instance rows per batched statevector stack.
    max_bucket: int = 64
    backend: str = "serial"
    workers: Optional[int] = None
    retries: int = 0
    backoff_base_s: float = 0.0
    task_timeout_s: Optional[float] = None
    deadline_s: Optional[float] = None

    def __post_init__(self):
        if self.p < 1:
            raise FlywheelError("depth p must be >= 1")
        if self.optimizer_iters < 1:
            raise FlywheelError("optimizer_iters must be >= 1")
        if self.checkpoint_every < 1:
            raise FlywheelError("checkpoint_every must be >= 1")
        if self.max_bucket < 1:
            raise FlywheelError("max_bucket must be >= 1")
        if self.label_method not in LABEL_METHODS:
            raise FlywheelError(
                f"unknown label method {self.label_method!r}; "
                f"choose from {LABEL_METHODS}"
            )

    def executor(
        self, fault_injector: Optional[FaultInjector] = None
    ) -> ParallelExecutor:
        """The labeling executor implied by this config."""
        return ParallelExecutor(
            backend=self.backend,
            max_workers=self.workers,
            retry_policy=RetryPolicy(
                retries=self.retries,
                backoff_base_s=self.backoff_base_s,
                jitter=0.1 if self.backoff_base_s > 0 else 0.0,
                seed=self.seed,
            ),
            task_timeout_s=self.task_timeout_s,
            deadline_s=self.deadline_s,
            fault_injector=fault_injector,
        )

    def fingerprint(self, candidates: Sequence[Candidate]) -> dict:
        """Output identity: optimizer config + the exact worklist.

        Execution knobs (backend, workers, retries, timeouts) are
        excluded on purpose — a resume on different hardware must still
        produce the same labels.
        """
        return {
            "kind": "flywheel-relabel",
            "p": self.p,
            "optimizer_iters": self.optimizer_iters,
            "learning_rate": self.learning_rate,
            "tol": self.tol,
            "seed": self.seed,
            "label_method": self.label_method,
            "candidates": [
                {
                    "wl_hash": c.wl_hash,
                    "gammas": list(c.served_gammas),
                    "betas": list(c.served_betas),
                }
                for c in candidates
            ],
        }

    def manifest_config(self) -> dict:
        """JSON-safe config stored alongside the fingerprint."""
        return {
            "p": self.p,
            "optimizer_iters": self.optimizer_iters,
            "learning_rate": self.learning_rate,
            "tol": self.tol,
            "seed": self.seed,
            "label_method": self.label_method,
            "checkpoint_every": self.checkpoint_every,
            "max_bucket": self.max_bucket,
        }


#: One candidate's slot in a bucket task: (graph, served gammas, betas).
_BucketEntry = Tuple[object, tuple, tuple]


def _relabel_bucket(payload) -> List[QAOARecord]:
    """Relabel one same-size bucket of candidates in lock step.

    Module-level (tuple payload) so the process backend can pickle it.
    Every candidate contributes one instance row warm-started from its
    served parameters; the batched Adam optimizer tracks the per-row
    best iterate, so the returned label is never worse than what the
    service served. Angles are folded onto the canonical manifold
    exactly as offline generation does, so flywheel labels and seed
    labels live on the same target surface.
    """
    entries, p, optimizer_iters, learning_rate, tol, cache, label_method = payload
    # Buckets group same-node-count candidates, so the whole bucket is
    # either within the dense statevector bound or beyond it. Beyond it
    # (only reachable when the selector admitted the class under the
    # analytic-p1 labeler) each entry is labeled on the closed-form
    # surface, warm-started from the served parameters.
    if (
        label_method == "analytic-p1"
        and entries
        and entries[0][0].num_nodes > MAX_LABELABLE_NODES
    ):
        return [
            label_graph_analytic(
                graph,
                p=p,
                warm_start=(gammas, betas),
                source=SOURCE_FLYWHEEL,
            )
            for graph, gammas, betas in entries
        ]
    problems: List[MaxCutProblem] = []
    gamma_rows = []
    beta_rows = []
    for graph, gammas, betas in entries:
        problem = cache.get(graph) if cache is not None else MaxCutProblem(graph)
        problems.append(problem)
        gamma_rows.append(np.asarray(gammas, dtype=np.float64))
        beta_rows.append(np.asarray(betas, dtype=np.float64))
    simulator = BatchedQAOASimulator(problems)
    optimizer = BatchedAdamOptimizer(learning_rate=learning_rate)
    result = optimizer.run(
        simulator,
        np.stack(gamma_rows),
        np.stack(beta_rows),
        max_iters=optimizer_iters,
        tol=tol,
    )
    records = []
    for row, (graph, _, _) in enumerate(entries):
        problem = problems[row]
        expectation = float(result.expectations[row])
        gammas, betas = canonicalize_angles(
            result.gammas[row], result.betas[row], graph.is_weighted
        )
        if not graph.is_weighted:
            gammas, betas = canonical_representative(
                QAOASimulator(problem), gammas, betas
            )
        optimum = problem.max_cut_value()
        records.append(
            QAOARecord(
                graph=graph,
                p=p,
                gammas=tuple(float(g) for g in gammas),
                betas=tuple(float(b) for b in betas),
                expectation=expectation,
                optimal_value=float(optimum),
                approximation_ratio=problem.approximation_ratio(expectation),
                best_cut_value=float(optimum),
                source=SOURCE_FLYWHEEL,
            )
        )
    return records


def _shard_buckets(
    candidates: Sequence[Candidate], config: RelabelConfig
) -> List[Tuple[int, List[List[int]]]]:
    """The full labeling plan: ``(shard_id, [bucket indices...])``.

    Shards are fixed chunks of the candidate order (the checkpoint
    granularity); buckets group a shard's candidates by node count under
    the stack-size cap. The plan depends only on the candidate list and
    config, so a resumed run rebuilds the identical plan and the
    injector's global bucket numbering stays stable.
    """
    plan = []
    for shard_id, start in enumerate(
        range(0, len(candidates), config.checkpoint_every)
    ):
        indices = list(range(start, min(start + config.checkpoint_every,
                                        len(candidates))))
        by_size: Dict[int, List[int]] = {}
        for index in indices:
            by_size.setdefault(
                candidates[index].graph.num_nodes, []
            ).append(index)
        buckets = []
        for size in sorted(by_size):
            members = by_size[size]
            for chunk_start in range(0, len(members), config.max_bucket):
                buckets.append(
                    members[chunk_start:chunk_start + config.max_bucket]
                )
        plan.append((shard_id, buckets))
    return plan


def _wave_injector(
    injector: Optional[FaultInjector],
    global_indices: List[int],
) -> Optional[FaultInjector]:
    """Remap a run-global injector onto one wave's local task indices."""
    if injector is None:
        return None
    fails = {
        local: injector.failing_attempts(global_index)
        for local, global_index in enumerate(global_indices)
        if injector.failing_attempts(global_index) > 0
    }
    if not fails:
        return None
    return FaultInjector(fail_tasks=fails, delay_s=injector.delay_s)


def relabel_candidates(
    candidates: Sequence[Candidate],
    config: Optional[RelabelConfig] = None,
    checkpoint: Optional[Union[str, LabelingCheckpoint]] = None,
    resume: bool = False,
    executor: Optional[ParallelExecutor] = None,
    fault_injector: Optional[FaultInjector] = None,
    problem_cache: Optional[ProblemCache] = None,
) -> List[QAOARecord]:
    """Produce one :class:`QAOARecord` per candidate, in order.

    With ``checkpoint`` set, completed shards are durable and
    ``resume=True`` skips them — the returned records are byte-identical
    to an uninterrupted run. Raises
    :class:`~repro.exceptions.FlywheelError` when labeling fails past
    its retry budget.
    """
    if config is None:
        config = RelabelConfig()
    if not candidates:
        return []
    if executor is None:
        executor = config.executor(fault_injector)
    cache = problem_cache if problem_cache is not None else ProblemCache()
    plan = _shard_buckets(candidates, config)

    ckpt: Optional[LabelingCheckpoint] = None
    done: Dict[int, QAOARecord] = {}
    if checkpoint is not None:
        ckpt = (
            checkpoint
            if isinstance(checkpoint, LabelingCheckpoint)
            else LabelingCheckpoint(checkpoint)
        )
        fingerprint = config.fingerprint(candidates)
        if resume:
            ckpt.validate(fingerprint, len(candidates))
        else:
            ckpt.initialize(
                fingerprint,
                config.manifest_config(),
                len(candidates),
                config.checkpoint_every,
            )
        done = ckpt.load_records()
        if resume and done:
            logger.info(
                "resuming relabeling: %d/%d candidates already checkpointed",
                len(done),
                len(candidates),
            )

    base_injector = executor.fault_injector
    # Global bucket numbering over the full plan keeps injected faults
    # pinned to the same work regardless of which shards already ran.
    bucket_offset = {}
    counter = 0
    for shard_id, buckets in plan:
        bucket_offset[shard_id] = counter
        counter += len(buckets)
    try:
        for shard_id, buckets in plan:
            shard_indices = [i for bucket in buckets for i in bucket]
            if all(i in done for i in shard_indices):
                continue
            global_bucket_ids = [
                bucket_offset[shard_id] + j for j in range(len(buckets))
            ]
            executor.fault_injector = _wave_injector(
                base_injector, global_bucket_ids
            )
            payloads = [
                (
                    [
                        (
                            candidates[i].graph,
                            candidates[i].served_gammas,
                            candidates[i].served_betas,
                        )
                        for i in bucket
                    ],
                    config.p,
                    config.optimizer_iters,
                    config.learning_rate,
                    config.tol,
                    cache,
                    config.label_method,
                )
                for bucket in buckets
            ]
            labels = [
                f"shard{shard_id}/n={candidates[bucket[0]].graph.num_nodes}"
                f" x{len(bucket)}"
                for bucket in buckets
            ]
            try:
                results = executor.map(_relabel_bucket, payloads, labels=labels)
            except ExecutionError as exc:
                names = ", ".join(f.label for f in exc.failures[:5])
                raise FlywheelError(
                    f"relabeling failed for {len(exc.failures)} bucket(s): "
                    f"{names}"
                ) from exc
            shard_records: Dict[int, QAOARecord] = {}
            for bucket, bucket_records in zip(buckets, results):
                shard_records.update(zip(bucket, bucket_records))
            if ckpt is not None:
                ordered = sorted(shard_records)
                ckpt.write_shard(
                    shard_id,
                    ordered,
                    [record_to_payload(shard_records[i]) for i in ordered],
                )
            done.update(shard_records)
    finally:
        executor.fault_injector = base_injector

    records = [done[i] for i in range(len(candidates))]
    improved = sum(
        1
        for candidate, record in zip(candidates, records)
        if candidate.served_ar is None
        or record.approximation_ratio > candidate.served_ar + 1e-12
    )
    logger.info(
        "relabeled %d candidates (%d improved on served parameters, "
        "mean AR %.3f)",
        len(records),
        improved,
        float(np.mean([r.approximation_ratio for r in records])),
    )
    return records
