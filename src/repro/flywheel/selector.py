"""Candidate selection: which served instances deserve a real label.

The replay log is a firehose; labeling budget is not. This module
aggregates the log by 1-WL class and ranks the classes by how badly the
service needs a better answer for them:

1. **Fallback pressure** — classes that were (ever) answered from the
   classical fallback chain instead of the model rank first: these are
   exactly the instances the current model could not serve at all.
2. **Served quality** — among equally fallback-pressured classes, the
   worst achieved-vs-optimal approximation ratio of the *served*
   parameters ranks first (the simulator re-evaluates the served angles
   against the brute-force optimum; graphs the statevector path cannot
   label are excluded up front).
3. **Request frequency** — more-requested classes first; improving a hot
   instance pays more than improving a cold one.

Ties break on the WL hash, so the ranking is a pure function of the log
contents — two cycles over the same traffic select the same candidates
in the same order, which is what makes the whole flywheel replayable.

Classes already present in the training dataset (same WL hash) are
deduplicated away: the GNN maps 1-WL-indistinguishable graphs to the
same output, so relabeling them buys nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set

import numpy as np

from repro.data.generation import LABEL_METHODS, MAX_ANALYTIC_NODES
from repro.exceptions import FlywheelError
from repro.flywheel.replay import ReplayRecord
from repro.graphs.graph import Graph
from repro.maxcut.cache import ProblemCache
from repro.qaoa.analytic import p1_expectation
from repro.qaoa.simulator import QAOASimulator
from repro.serving.fallbacks import SOURCE_MODEL
from repro.utils.logging import get_logger

logger = get_logger(__name__)

#: Largest graph the dense-statevector labeler will take on.
MAX_LABELABLE_NODES = 15


@dataclass(frozen=True)
class SelectionConfig:
    """Knobs for one selection pass.

    Attributes
    ----------
    max_candidates:
        How many classes the labeling budget covers per cycle.
    max_evaluations:
        Cap on served-parameter re-evaluations (each costs a brute-force
        optimum plus one expectation). Classes are pre-ranked by
        fallback pressure and frequency, and only the top
        ``max_evaluations`` get an AR; the rest keep ``None`` and rank
        after scored classes within their pressure tier.
    min_requests:
        Classes seen fewer times than this are ignored.
    max_nodes:
        Largest labelable graph (dense statevector bound).
    label_method:
        Which labeler the downstream cycle will use. With
        ``"analytic-p1"``, unweighted depth-1 classes are labelable up
        to ``analytic_max_nodes`` via the closed-form surface, so the
        dense ``max_nodes`` bound stops excluding large graphs.
    analytic_max_nodes:
        Size bound when the analytic labeler applies.
    """

    max_candidates: int = 32
    max_evaluations: int = 128
    min_requests: int = 1
    max_nodes: int = MAX_LABELABLE_NODES
    label_method: str = "statevector"
    analytic_max_nodes: int = MAX_ANALYTIC_NODES

    def __post_init__(self):
        if self.max_candidates < 1:
            raise FlywheelError("max_candidates must be >= 1")
        if self.max_evaluations < 0:
            raise FlywheelError("max_evaluations must be >= 0")
        if self.min_requests < 1:
            raise FlywheelError("min_requests must be >= 1")
        if self.label_method not in LABEL_METHODS:
            raise FlywheelError(
                f"unknown label method {self.label_method!r}; "
                f"choose from {LABEL_METHODS}"
            )


@dataclass
class Candidate:
    """One 1-WL class picked for relabeling.

    Attributes
    ----------
    graph:
        Representative instance (first seen in the log).
    wl_hash:
        The class key.
    p:
        Depth of the served parameters (and of the label to produce).
    requests:
        How many logged requests hit this class.
    fallback_requests:
        How many of them were answered off the fallback chain.
    served_gammas, served_betas:
        The most recently served parameters — the warm start for
        relabeling.
    served_ar:
        Approximation ratio the served parameters actually achieve
        (``None`` when outside the evaluation budget).
    sources:
        Request count per provenance tag.
    """

    graph: Graph
    wl_hash: str
    p: int
    requests: int
    fallback_requests: int
    served_gammas: tuple
    served_betas: tuple
    served_ar: Optional[float]
    sources: Dict[str, int]

    @property
    def fallback_fraction(self) -> float:
        """Share of requests answered off the fallback chain."""
        return self.fallback_requests / self.requests if self.requests else 0.0

    def describe(self) -> dict:
        """JSON-safe summary (for cycle reports)."""
        return {
            "wl_hash": self.wl_hash,
            "name": self.graph.name,
            "num_nodes": self.graph.num_nodes,
            "p": self.p,
            "requests": self.requests,
            "fallback_requests": self.fallback_requests,
            "served_ar": self.served_ar,
            "sources": dict(self.sources),
        }


class _ClassAggregate:
    """Mutable per-WL-class accumulator used during the log sweep."""

    __slots__ = ("graph", "p", "requests", "fallback", "sources",
                 "gammas", "betas")

    def __init__(self, record: ReplayRecord):
        self.graph = record.graph
        self.p = record.p
        self.requests = 0
        self.fallback = 0
        self.sources: Dict[str, int] = {}
        self.gammas = record.gammas
        self.betas = record.betas

    def add(self, record: ReplayRecord) -> None:
        # A compacted record stands for ``weight`` original requests;
        # its source_counts histogram carries the per-source split, so
        # frequency and fallback pressure are identical whether the
        # segment was compacted or raw.
        self.requests += record.weight
        for source, count in record.source_counts.items():
            self.sources[source] = self.sources.get(source, 0) + count
            if source != SOURCE_MODEL:
                self.fallback += count
        # Latest served parameters win: they reflect the model the next
        # cycle competes against.
        self.gammas = record.gammas
        self.betas = record.betas


def _labelable(graph: Graph, p: int, config: SelectionConfig) -> bool:
    """Whether the configured labeler can take the graph on at all.

    The dense statevector bound always qualifies; with the analytic-p1
    labeler configured, unweighted depth-1 classes additionally qualify
    up to ``analytic_max_nodes`` — that is the relaxation that lets the
    flywheel learn from large-graph traffic.
    """
    if graph.num_nodes < 2 or graph.num_edges == 0:
        return False
    if graph.num_nodes <= config.max_nodes:
        return True
    return (
        config.label_method == "analytic-p1"
        and p == 1
        and not graph.is_weighted
        and graph.num_nodes <= config.analytic_max_nodes
    )


def select_candidates(
    records: Sequence[ReplayRecord],
    existing_hashes: Iterable[str] = (),
    config: Optional[SelectionConfig] = None,
    problem_cache: Optional[ProblemCache] = None,
) -> List[Candidate]:
    """Rank the replay log into a labeling worklist.

    Returns at most ``config.max_candidates`` candidates, most valuable
    first, deduplicated against ``existing_hashes`` (WL hashes already
    in the training dataset). Deterministic for fixed inputs.
    """
    if config is None:
        config = SelectionConfig()
    known: Set[str] = set(existing_hashes)
    cache = problem_cache if problem_cache is not None else ProblemCache()

    by_class: Dict[str, _ClassAggregate] = {}
    skipped_known = 0
    skipped_unlabelable = 0
    for record in records:
        if record.wl_hash in known:
            skipped_known += 1
            continue
        aggregate = by_class.get(record.wl_hash)
        if aggregate is None:
            if not _labelable(record.graph, record.p, config):
                known.add(record.wl_hash)  # don't re-test per record
                skipped_unlabelable += 1
                continue
            aggregate = _ClassAggregate(record)
            by_class[record.wl_hash] = aggregate
        aggregate.add(record)

    pool = [
        (wl_hash, agg)
        for wl_hash, agg in by_class.items()
        if agg.requests >= config.min_requests
    ]
    # Pre-rank (pressure, frequency, hash) to spend the evaluation
    # budget where it matters; the hash tiebreak keeps the order a pure
    # function of log contents.
    pool.sort(
        key=lambda item: (
            -item[1].fallback / item[1].requests,
            -item[1].requests,
            item[0],
        )
    )

    candidates: List[Candidate] = []
    for rank, (wl_hash, agg) in enumerate(pool):
        served_ar = None
        if rank < config.max_evaluations:
            served_ar = _served_ratio(agg, cache, config)
        candidates.append(
            Candidate(
                graph=agg.graph,
                wl_hash=wl_hash,
                p=agg.p,
                requests=agg.requests,
                fallback_requests=agg.fallback,
                served_gammas=agg.gammas,
                served_betas=agg.betas,
                served_ar=served_ar,
                sources=agg.sources,
            )
        )

    candidates.sort(key=_rank_key)
    selected = candidates[: config.max_candidates]
    logger.info(
        "selected %d/%d replay classes (%d records; %d already in "
        "dataset, %d unlabelable)",
        len(selected),
        len(candidates),
        len(records),
        skipped_known,
        skipped_unlabelable,
    )
    return selected


def _served_ratio(
    agg: _ClassAggregate, cache: ProblemCache, config: SelectionConfig
) -> float:
    """AR the served parameters achieve on the representative graph.

    Graphs beyond the dense statevector bound (admitted only when the
    analytic labeler applies) are scored on the exact p=1 closed form,
    normalized by the total-edge-weight upper bound — a lower bound on
    the true AR, but a consistent ranking signal across large classes.
    """
    if agg.graph.num_nodes > config.max_nodes:
        expectation = p1_expectation(
            agg.graph, float(agg.gammas[0]), float(agg.betas[0])
        )
        return float(expectation / max(float(np.sum(agg.graph.weights)), 1.0))
    problem = cache.get(agg.graph)
    simulator = QAOASimulator(problem)
    expectation = simulator.expectation(
        np.asarray(agg.gammas, dtype=np.float64),
        np.asarray(agg.betas, dtype=np.float64),
    )
    return float(problem.approximation_ratio(float(expectation)))


def _rank_key(candidate: Candidate):
    """Most valuable first under ascending sort.

    Fallback-served classes lead; within a pressure tier, worst served
    AR first (unevaluated classes rank after every scored one); then
    request frequency; then the hash for a total, deterministic order.
    """
    ar = candidate.served_ar if candidate.served_ar is not None else np.inf
    return (
        -candidate.fallback_fraction,
        ar,
        -candidate.requests,
        candidate.wl_hash,
    )
