"""Serving-side hot-swap: watch the version pointer, swap on change.

:class:`ModelWatcher` closes the loop from the serving end. It polls
the :class:`~repro.flywheel.versions.VersionStore` pointer file
(``CURRENT.json``, written atomically by the promotion step) and, when
the pointed-at fingerprint differs from what is being served, loads the
new checkpoint and calls
:meth:`~repro.serving.service.PredictionService.swap_model` — which
replaces the registry entry, drains the stale micro-batcher, resets the
breaker, and invalidates the old fingerprint's cache entries. The
service never restarts and never serves a torn model: the pointer
moves atomically and the checkpoint it names is fully written before
the pointer moves.

``check_once()`` is the whole mechanism; ``start()`` just runs it on a
daemon thread. Tests and the CLI cycle driver call ``check_once()``
directly for deterministic, poll-free swaps.
"""

from __future__ import annotations

import threading
from typing import Optional, Union

from repro.exceptions import FlywheelError
from repro.flywheel.versions import VersionStore
from repro.serving.registry import load_checkpoint
from repro.utils.logging import get_logger

logger = get_logger(__name__)


class ModelWatcher:
    """Poll a version store and hot-swap the service on promotion."""

    def __init__(
        self,
        service,
        store: Union[VersionStore, str],
        model_name: str = "default",
        poll_interval_s: float = 2.0,
    ):
        if poll_interval_s <= 0:
            raise FlywheelError(
                f"poll_interval_s must be positive, got {poll_interval_s}"
            )
        self.service = service
        self.store = store if isinstance(store, VersionStore) else VersionStore(store)
        self.model_name = model_name
        self.poll_interval_s = float(poll_interval_s)
        self.swaps = 0
        self.check_errors = 0
        self._last_fingerprint: Optional[str] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    def _served_fingerprint(self) -> Optional[str]:
        registry = self.service.registry
        if self.model_name not in registry:
            return None
        return registry.get(self.model_name).fingerprint

    def check_once(self) -> Optional[dict]:
        """One poll: swap if the pointer moved; return the swap summary.

        Returns ``None`` when nothing changed (no pointer yet, or the
        pointed-at fingerprint is already serving). Load/parse failures
        are counted and swallowed — a torn store must not kill the
        serving process; the next poll retries.
        """
        try:
            pointer = self.store.current()
        except Exception as exc:  # noqa: BLE001 — keep serving
            self.check_errors += 1
            logger.warning("version pointer check failed (%s)", exc)
            return None
        if pointer is None:
            return None
        fingerprint = pointer["fingerprint"]
        if fingerprint == self._served_fingerprint():
            self._last_fingerprint = fingerprint
            return None
        try:
            model = load_checkpoint(pointer["path"])
        except Exception as exc:  # noqa: BLE001 — keep serving
            self.check_errors += 1
            logger.warning(
                "failed to load promoted checkpoint %s (%s); still "
                "serving the previous model",
                pointer["path"],
                exc,
            )
            return None
        summary = self.service.swap_model(
            model,
            name=self.model_name,
            source=str(pointer["path"]),
            version=int(pointer["version"]),
        )
        self.swaps += 1
        self._last_fingerprint = fingerprint
        logger.info(
            "watcher swapped %r to v%04d (%s)",
            self.model_name,
            int(pointer["version"]),
            fingerprint,
        )
        return summary

    # ------------------------------------------------------------------
    # Background polling
    # ------------------------------------------------------------------
    def start(self) -> "ModelWatcher":
        """Begin polling on a daemon thread."""
        if self._thread is not None:
            raise FlywheelError("watcher already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="flywheel-watcher", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.poll_interval_s):
            self.check_once()

    def stop(self) -> None:
        """Stop the polling thread (waits for it to exit)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def __enter__(self) -> "ModelWatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def stats(self) -> dict:
        """JSON-safe watcher counters."""
        return {
            "model_name": self.model_name,
            "swaps": self.swaps,
            "check_errors": self.check_errors,
            "last_fingerprint": self._last_fingerprint,
            "poll_interval_s": self.poll_interval_s,
            "running": self._thread is not None,
        }
