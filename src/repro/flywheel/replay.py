"""The serving replay store: one JSONL record per answered prediction.

The flywheel starts here. :class:`ReplayLog` is the sink the prediction
service writes into — one self-contained JSON line per request, carrying
everything a later selection/relabeling pass needs: the graph itself
(text format), its 1-WL canonical hash, the depth, the served
parameters, the answer's provenance (``model`` / ``fixed_angle`` /
``analytic`` / ``random``), whether it was a cache hit, the latency, and
the fingerprint of the model that keyed the lookup.

Durability model
----------------
Appends are *line-atomic*: each record is one ``write()`` of a complete
``...\\n`` line onto an append-mode handle, flushed before the lock is
released. A process killed mid-write can therefore leave at most one
partial trailing line — which :meth:`ReplayLog.load` recovers from (the
partial line is dropped and counted, every complete line survives) and
which the constructor repairs on reopen (the torn tail is truncated so a
restarted server appends on a clean boundary).

The log rotates: once the active file passes ``max_bytes`` it is
renamed (``os.replace``, atomic) to a numbered segment and a fresh
active file begins. ``load()`` reads segments in rotation order, active
file last, so replay order equals serving order.

Rotation also *compacts* the sealed segment: records are deduplicated
by WL class, keeping the latest record of each class — but duplicates
are merged, not discarded. The survivor absorbs the dropped records'
request ``weight`` and per-source counts, so the selector's frequency
and fallback-pressure signals over a compacted segment are exactly
what the raw segment would have produced, at a fraction of the bytes.
The rewrite is atomic (temp file + ``os.replace``); a crash mid-compact
leaves the uncompacted segment, which is merely bigger, never wrong.

Sampling is deterministic: whether request ``seq`` is logged depends
only on ``(seed, seq)``, never on wall-clock time or thread timing —
two identically-driven services produce identical logs.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import threading
from pathlib import Path
from typing import IO, List, Optional, Union

import numpy as np

from repro.exceptions import ReplayLogError
from repro.graphs.graph import Graph
from repro.graphs.io import graph_from_text, graph_to_text
from repro.utils.logging import get_logger

logger = get_logger(__name__)

PathLike = Union[str, Path]

ACTIVE_NAME = "replay_current.jsonl"
SEGMENT_PATTERN = re.compile(r"replay_(\d{5})\.jsonl$")

#: Mixed into the sampling hash so a log and anything else sharing its
#: seed still draw independent streams.
_SAMPLE_STREAM = 0x5EED_F10C


class ReplayRecord:
    """One served prediction, as the flywheel sees it.

    Attributes
    ----------
    graph:
        The requested instance.
    wl_hash:
        Its 1-WL canonical hash (the dedup/frequency key).
    p:
        Depth of the served parameters.
    gammas, betas:
        The served warm-start parameters, length ``p`` each.
    source:
        Provenance tag (``model``, ``fixed_angle``, ``analytic``,
        ``random``).
    model_key:
        Fingerprint of the serving model (or the ``fallback-p<p>`` tag
        when no model was registered) the cache lookup was keyed under.
    cached:
        Whether the answer came from the prediction cache.
    latency_ms:
        Service-side latency of the request.
    weight:
        How many original requests this record stands for. Freshly
        logged records weigh 1; segment compaction merges a WL class's
        duplicates into its latest record and sums their weights, so
        frequency signals survive the dedup.
    source_counts:
        Per-source request histogram behind ``weight`` (``{source:
        count}``). For a fresh record this is ``{source: 1}``; a
        compacted record carries the merged histogram of everything it
        absorbed, preserving the fallback-pressure split exactly.
    """

    __slots__ = (
        "graph", "wl_hash", "p", "gammas", "betas",
        "source", "model_key", "cached", "latency_ms",
        "weight", "source_counts",
    )

    def __init__(
        self,
        graph: Graph,
        wl_hash: str,
        p: int,
        gammas,
        betas,
        source: str,
        model_key: str = "",
        cached: bool = False,
        latency_ms: float = 0.0,
        weight: int = 1,
        source_counts: Optional[dict] = None,
    ):
        self.graph = graph
        self.wl_hash = str(wl_hash)
        self.p = int(p)
        self.gammas = tuple(float(g) for g in gammas)
        self.betas = tuple(float(b) for b in betas)
        self.source = str(source)
        self.model_key = str(model_key)
        self.cached = bool(cached)
        self.latency_ms = float(latency_ms)
        self.weight = int(weight)
        self.source_counts = (
            {str(key): int(value) for key, value in source_counts.items()}
            if source_counts
            else {self.source: self.weight}
        )

    def to_payload(self) -> dict:
        """JSON-safe dict (the on-disk line schema)."""
        payload = {
            "graph": graph_to_text(self.graph),
            "wl_hash": self.wl_hash,
            "p": self.p,
            "gammas": list(self.gammas),
            "betas": list(self.betas),
            "source": self.source,
            "model_key": self.model_key,
            "cached": self.cached,
            "latency_ms": self.latency_ms,
        }
        # Only compacted records carry the merged fields; the hot-path
        # line for a fresh record stays as small as before.
        if self.weight != 1 or self.source_counts != {self.source: 1}:
            payload["weight"] = self.weight
            payload["source_counts"] = dict(self.source_counts)
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "ReplayRecord":
        """Inverse of :meth:`to_payload`."""
        try:
            return cls(
                graph=graph_from_text(payload["graph"]),
                wl_hash=payload["wl_hash"],
                p=payload["p"],
                gammas=payload["gammas"],
                betas=payload["betas"],
                source=payload["source"],
                model_key=payload.get("model_key", ""),
                cached=payload.get("cached", False),
                latency_ms=payload.get("latency_ms", 0.0),
                weight=payload.get("weight", 1),
                source_counts=payload.get("source_counts"),
            )
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ReplayLogError(f"malformed replay record: {exc}") from exc


class ReplayLog:
    """Rotating, line-atomic JSONL store of served predictions.

    Parameters
    ----------
    directory:
        Where segments live; created on first use.
    max_bytes:
        Active-file size past which it rotates into a numbered segment.
    sample_rate:
        Fraction of requests logged. Selection is a pure function of
        ``(seed, sequence number)``, so identical traffic produces
        identical logs regardless of timing.
    seed:
        Root of the sampling stream.
    """

    def __init__(
        self,
        directory: PathLike,
        max_bytes: int = 4 << 20,
        sample_rate: float = 1.0,
        seed: int = 0,
    ):
        if max_bytes < 1:
            raise ReplayLogError(f"max_bytes must be >= 1, got {max_bytes}")
        if not 0.0 <= sample_rate <= 1.0:
            raise ReplayLogError(
                f"sample_rate must be in [0, 1], got {sample_rate}"
            )
        self.directory = Path(directory)
        self.max_bytes = int(max_bytes)
        self.sample_rate = float(sample_rate)
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._handle: Optional[IO[bytes]] = None
        self.logged = 0
        self.sampled_out = 0
        self.dropped = 0
        self.rotations = 0
        self.compactions = 0
        self.compacted_records = 0
        self.recovered_lines = 0
        #: Monotone per-process request counter driving the sampler.
        self._seq = 0

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @property
    def active_path(self) -> Path:
        """The file currently being appended to."""
        return self.directory / ACTIVE_NAME

    def segment_paths(self) -> List[Path]:
        """Rotated segments, oldest first."""
        if not self.directory.is_dir():
            return []
        segments = [
            path
            for path in self.directory.iterdir()
            if SEGMENT_PATTERN.match(path.name)
        ]
        return sorted(segments, key=lambda p: p.name)

    def _next_segment_path(self) -> Path:
        segments = self.segment_paths()
        if not segments:
            index = 0
        else:
            index = int(SEGMENT_PATTERN.match(segments[-1].name).group(1)) + 1
        return self.directory / f"replay_{index:05d}.jsonl"

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def _ensure_open(self) -> IO[bytes]:
        if self._handle is None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._repair_torn_tail()
            self._handle = open(self.active_path, "ab")
        return self._handle

    def _repair_torn_tail(self) -> None:
        """Truncate a partial trailing line left by a mid-write kill.

        Append-mode writes are line-atomic from this process's point of
        view, but a kill between the OS write and its completion can
        leave a torn tail. Reopening on a clean line boundary keeps the
        'at most one corrupt line, and only at the very end' invariant.
        """
        path = self.active_path
        if not path.is_file():
            return
        data = path.read_bytes()
        if not data or data.endswith(b"\n"):
            return
        cut = data.rfind(b"\n") + 1  # 0 when no newline at all
        with open(path, "r+b") as handle:
            handle.truncate(cut)
        self.recovered_lines += 1
        logger.warning(
            "replay log %s had a torn trailing line (%d bytes); truncated",
            path,
            len(data) - cut,
        )

    def _should_log(self, seq: int) -> bool:
        """Deterministic sampling decision for request ``seq``."""
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        rng = np.random.default_rng([self.seed, _SAMPLE_STREAM, int(seq)])
        return float(rng.random()) < self.sample_rate

    def _reserve(self) -> bool:
        """Claim the next sequence slot; ``False`` when sampling skips it.

        The sampling decision happens *before* any record construction
        or JSON serialization, so at ``sample_rate < 1`` the unsampled
        majority of requests costs one lock acquisition and one hash —
        zero serialization work on the serving hot path.
        """
        with self._lock:
            seq = self._seq
            self._seq += 1
            if not self._should_log(seq):
                self.sampled_out += 1
                return False
            return True

    def _append_payload(self, payload: dict) -> bool:
        """Serialize outside the lock, write the line under it."""
        line = (json.dumps(payload, separators=(",", ":")) + "\n").encode()
        with self._lock:
            try:
                handle = self._ensure_open()
                handle.write(line)
                handle.flush()
                self.logged += 1
                self._rotate_if_needed()
            except OSError as exc:
                self.dropped += 1
                logger.warning("replay log append failed (%s); dropped", exc)
                return False
            return True

    def append(self, record: ReplayRecord) -> Optional[bool]:
        """Write one record.

        Returns ``True`` when the record was durably appended, ``None``
        when deterministic sampling skipped it, and ``False`` when the
        write failed (the error is swallowed and counted — a broken log
        must never break serving).
        """
        if not self._reserve():
            return None
        return self._append_payload(record.to_payload())

    def log_prediction(self, graph: Graph, result) -> Optional[bool]:
        """Append a :class:`ReplayRecord` built from a service answer.

        ``result`` is duck-typed to
        :class:`repro.serving.service.PredictionResult`; its
        ``cache_key`` (``<model_key>:<wl_hash>``) supplies both the hash
        and the model fingerprint without re-running 1-WL. The record —
        graph text included — is only built once the deterministic
        sampler has claimed the request; sampled-out requests do no
        serialization work at all.
        """
        if not self._reserve():
            return None
        model_key, _, wl_hash = result.cache_key.rpartition(":")
        record = ReplayRecord(
            graph=graph,
            wl_hash=wl_hash,
            p=result.p,
            gammas=result.gammas,
            betas=result.betas,
            source=result.source,
            model_key=model_key,
            cached=result.cached,
            latency_ms=result.latency_s * 1e3,
        )
        return self._append_payload(record.to_payload())

    def _rotate_if_needed(self) -> None:
        """Rotate the active file once it exceeds the size budget."""
        if self._handle is None:
            return
        if self._handle.tell() < self.max_bytes:
            return
        self._handle.close()
        self._handle = None
        segment = self._next_segment_path()
        os.replace(self.active_path, segment)
        self.rotations += 1
        self._compact_segment(segment)

    def _compact_segment(self, path: Path) -> None:
        """Dedupe a sealed segment by WL class, keeping the latest record.

        Duplicates are *merged*, not discarded: the surviving (latest)
        record of each class absorbs the dropped records' request
        ``weight`` and per-source counts, so selection sweeps over the
        compacted segment see exactly the frequency and fallback-
        pressure signals the raw segment carried. Unparseable lines are
        kept verbatim (``load()`` already skips and counts them), and
        the rewrite is atomic — any failure leaves the raw segment,
        which is merely bigger, never wrong.
        """
        try:
            lines = path.read_bytes().splitlines()
        except OSError as exc:
            logger.warning("segment compaction read failed (%s); kept", exc)
            return
        # wl class -> (line index, raw line, parsed payload) of the
        # latest occurrence; merged weight/source histograms per class.
        kept: dict = {}
        merged_weight: dict = {}
        merged_sources: dict = {}
        raw_keep: list = []
        removed = 0
        for idx, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
                key = payload["wl_hash"]
            except (json.JSONDecodeError, KeyError, TypeError):
                raw_keep.append((idx, line))
                continue
            if key in kept:
                removed += 1
            kept[key] = (idx, line, payload)
            weight = int(payload.get("weight", 1))
            merged_weight[key] = merged_weight.get(key, 0) + weight
            counts = payload.get("source_counts") or {
                str(payload.get("source", "")): weight
            }
            bucket = merged_sources.setdefault(key, {})
            for source, count in counts.items():
                bucket[source] = bucket.get(source, 0) + int(count)
        if not removed:
            return
        out = list(raw_keep)
        for key, (idx, line, payload) in kept.items():
            if merged_weight[key] != int(payload.get("weight", 1)):
                payload["weight"] = merged_weight[key]
                payload["source_counts"] = merged_sources[key]
                line = json.dumps(payload, separators=(",", ":")).encode()
            out.append((idx, line))
        # Survivors stay in serving order (order of latest occurrence).
        out.sort()
        data = b"\n".join(line for _, line in out) + b"\n"
        try:
            fd, tmp = tempfile.mkstemp(
                dir=str(path.parent), suffix=".jsonl.tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(data)
                os.replace(tmp, path)
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        except OSError as exc:
            logger.warning("segment compaction write failed (%s); kept", exc)
            return
        self.compactions += 1
        self.compacted_records += removed
        logger.info(
            "compacted %s: %d records merged into %d classes",
            path.name,
            removed + len(kept),
            len(kept),
        )

    def close(self) -> None:
        """Flush and release the active file handle."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "ReplayLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def load(self) -> List[ReplayRecord]:
        """Every parseable record, in serving order.

        A corrupt *trailing* line (torn by a kill mid-append) is
        recovered from silently; corrupt interior lines are skipped with
        a warning and counted in ``recovered_lines`` rather than
        bricking the whole flywheel on one bad byte.
        """
        records: List[ReplayRecord] = []
        with self._lock:
            paths = self.segment_paths()
            if self.active_path.is_file():
                paths.append(self.active_path)
            for path in paths:
                records.extend(self._load_file(path))
        return records

    def _load_file(self, path: Path) -> List[ReplayRecord]:
        try:
            text = path.read_text()
        except OSError as exc:
            raise ReplayLogError(f"unreadable replay segment {path}: {exc}")
        records: List[ReplayRecord] = []
        lines = text.splitlines()
        for number, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                records.append(ReplayRecord.from_payload(payload))
            except (json.JSONDecodeError, ReplayLogError) as exc:
                self.recovered_lines += 1
                if number == len(lines):
                    logger.warning(
                        "replay segment %s: dropped torn trailing line", path
                    )
                else:
                    logger.warning(
                        "replay segment %s line %d unparseable (%s); skipped",
                        path,
                        number,
                        exc,
                    )
        return records

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Counter snapshot (feeds the serving /metrics flywheel block)."""
        with self._lock:
            return {
                "directory": str(self.directory),
                "logged": self.logged,
                "sampled_out": self.sampled_out,
                "dropped": self.dropped,
                "rotations": self.rotations,
                "compactions": self.compactions,
                "compacted_records": self.compacted_records,
                "recovered_lines": self.recovered_lines,
                "sample_rate": self.sample_rate,
                "max_bytes": self.max_bytes,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReplayLog({str(self.directory)!r}, logged={self.logged})"
