"""One turn of the flywheel: replay → select → relabel → retrain → gate.

:func:`run_cycle` is the deterministic composition of every flywheel
stage. Its contract — the one the CLI, the smoke tests, and the
acceptance criterion lean on — is:

    Given the same replay log contents, base dataset, version-store
    state, and :class:`FlywheelConfig`, a cycle produces the same
    selected candidates, the same labels (bit-identical, even across a
    kill/resume through the labeling checkpoint), the same candidate
    weights, the same gate scores, and therefore the same promoted
    checkpoint fingerprint.

Nothing in the cycle reads a clock, an unseeded RNG, or thread timing.
The only wall-clock dependent artifacts are log lines and the latency
fields *inside* replay records, which no stage consumes.

Filesystem layout (all under the version store directory):

.. code-block:: text

    store/
      versions/ candidates/ promotions/ CURRENT.json   (VersionStore)
      label_ckpt_v0002/    # labeling checkpoint for the v2 attempt
      cycles/cycle_00001.json  # per-cycle report
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Optional, Union

from repro.data.checkpoint import LabelingCheckpoint
from repro.data.dataset import QAOADataset
from repro.data.splits import stratified_split
from repro.exceptions import CheckpointError, FlywheelError
from repro.flywheel.labeler import RelabelConfig, relabel_candidates
from repro.flywheel.promotion import PromotionConfig, gate_candidate
from repro.flywheel.replay import ReplayLog
from repro.flywheel.retrain import RetrainConfig, fit_model, fold_labels
from repro.flywheel.selector import SelectionConfig, select_candidates
from repro.flywheel.versions import VersionStore
from repro.graphs.canonical import wl_canonical_hash
from repro.maxcut.cache import ProblemCache
from repro.runtime import FaultInjector
from repro.utils.logging import get_logger
from repro.utils.serialization import save_json

logger = get_logger(__name__)


@dataclass(frozen=True)
class FlywheelConfig:
    """Every knob of one cycle, stage configs included.

    Use :meth:`seeded` to build a config whose stages all derive from
    one root seed — the form the CLI and the acceptance criterion use.
    """

    seed: int = 0
    #: Held-out records for the promotion gate (stratified split of the
    #: merged dataset; the candidate never trains on them).
    eval_size: int = 6
    selection: SelectionConfig = field(default_factory=SelectionConfig)
    relabel: RelabelConfig = field(default_factory=RelabelConfig)
    retrain: RetrainConfig = field(default_factory=RetrainConfig)
    promotion: PromotionConfig = field(default_factory=PromotionConfig)

    def __post_init__(self):
        if self.eval_size < 1:
            raise FlywheelError("eval_size must be >= 1")

    @classmethod
    def seeded(
        cls,
        seed: int,
        eval_size: int = 6,
        selection: Optional[SelectionConfig] = None,
        relabel: Optional[RelabelConfig] = None,
        retrain: Optional[RetrainConfig] = None,
        promotion: Optional[PromotionConfig] = None,
    ) -> "FlywheelConfig":
        """A config whose every stage is seeded from ``seed``."""
        return cls(
            seed=seed,
            eval_size=eval_size,
            selection=selection if selection is not None else SelectionConfig(),
            relabel=replace(
                relabel if relabel is not None else RelabelConfig(), seed=seed
            ),
            retrain=replace(
                retrain if retrain is not None else RetrainConfig(), seed=seed
            ),
            promotion=replace(
                promotion if promotion is not None else PromotionConfig(),
                seed=seed,
            ),
        )


def _load_replay(replay: Union[ReplayLog, str, Path]) -> ReplayLog:
    return replay if isinstance(replay, ReplayLog) else ReplayLog(replay)


def _next_cycle_index(cycles_dir: Path) -> int:
    if not cycles_dir.is_dir():
        return 1
    return 1 + sum(
        1 for p in cycles_dir.iterdir() if p.name.startswith("cycle_")
    )


def run_cycle(
    replay: Union[ReplayLog, str, Path],
    dataset_path: Union[str, Path],
    store: Union[VersionStore, str, Path],
    config: Optional[FlywheelConfig] = None,
    fault_injector: Optional[FaultInjector] = None,
    problem_cache: Optional[ProblemCache] = None,
) -> dict:
    """Run one full flywheel cycle; returns a JSON-safe report.

    ``dataset_path`` is read as the current training set (missing file
    = empty cold start) and rewritten with the new labels folded in
    whenever relabeling produced any. The version store is only
    *published to* (new ``versions/`` entry + pointer move) when the
    gate promotes; a rejected candidate stays staged under
    ``candidates/`` and the serving surface is untouched.

    ``fault_injector`` (tests/CI) injects deterministic failures into
    the labeling stage; with retries configured the cycle still
    completes with bit-identical output.
    """
    if config is None:
        config = FlywheelConfig()
    store = store if isinstance(store, VersionStore) else VersionStore(store)
    replay_log = _load_replay(replay)
    cache = problem_cache if problem_cache is not None else ProblemCache()
    dataset_path = Path(dataset_path)

    report: dict = {"promoted": False, "seed": config.seed}

    # 1. Replay → records.
    records = replay_log.load()
    report["replay_records"] = len(records)

    # 2. Base dataset + its WL classes (the dedup set).
    base = (
        QAOADataset.load(dataset_path)
        if dataset_path.is_file()
        else QAOADataset()
    )
    report["base_dataset"] = len(base)
    existing = {wl_canonical_hash(graph) for graph in base.graphs()}

    # 3. Selection.
    candidates = select_candidates(
        records, existing, config.selection, problem_cache=cache
    )
    report["candidates"] = [c.describe() for c in candidates]
    if not candidates:
        report["reason"] = "no labelable replay classes outside the dataset"
        logger.info("flywheel cycle: %s; nothing to do", report["reason"])
        _write_cycle_report(store, report)
        return report

    # 4. Checkpointed relabeling for the version this cycle is building.
    next_version = (store.versions()[-1] + 1) if store.versions() else 1
    ckpt_dir = store.directory / f"label_ckpt_v{next_version:04d}"
    resume = LabelingCheckpoint(ckpt_dir).exists()
    try:
        new_records = relabel_candidates(
            candidates,
            config.relabel,
            checkpoint=ckpt_dir,
            resume=resume,
            fault_injector=fault_injector,
            problem_cache=cache,
        )
    except CheckpointError:
        # The checkpoint belongs to a different worklist (the replay log
        # moved since the interrupted cycle); start that version over.
        logger.warning(
            "labeling checkpoint %s is for a different candidate set; "
            "restarting it",
            ckpt_dir,
        )
        shutil.rmtree(ckpt_dir)
        new_records = relabel_candidates(
            candidates,
            config.relabel,
            checkpoint=ckpt_dir,
            resume=False,
            fault_injector=fault_injector,
            problem_cache=cache,
        )
    report["labeled"] = len(new_records)

    # 5. Fold labels (SDP-filtered) and persist the grown dataset.
    merged, kept = fold_labels(base, new_records, config.retrain)
    report["labels_kept"] = kept
    report["labels_pruned"] = len(new_records) - kept
    report["dataset_size"] = len(merged)
    merged.save(dataset_path)
    if kept == 0:
        report["reason"] = "every new label was pruned by SDP"
        logger.info("flywheel cycle: %s; skipping retrain", report["reason"])
        _write_cycle_report(store, report)
        return report

    # 6. Train the candidate on everything but the held-out gate set.
    if len(merged) > config.eval_size + 1:
        train_ds, eval_ds = stratified_split(
            merged, config.eval_size, rng=config.seed
        )
    else:
        # Too small to hold anything out; gate on the training set
        # (cold-start corner, still deterministic).
        train_ds = eval_ds = merged
    model, final_loss = fit_model(train_ds, config.retrain)
    report["final_loss"] = final_loss
    report["eval_graphs"] = len(eval_ds)

    # 7. Gate against the incumbent.
    incumbent = None
    incumbent_pointer = store.current()
    if incumbent_pointer is not None:
        incumbent, _ = store.load_current()
    decision = gate_candidate(
        model,
        incumbent,
        eval_ds.graphs(),
        config.promotion,
        problem_cache=cache,
    )
    report["gate"] = decision.manifest()

    # 8. Stage; publish only on promotion.
    candidate_path = store.stage_candidate(
        model, tag=decision.candidate_fingerprint, final_loss=final_loss
    )
    report["candidate_checkpoint"] = str(candidate_path)
    if decision.promote:
        pointer = store.promote_candidate(candidate_path)
        manifest = dict(decision.manifest())
        manifest.update(
            version=pointer["version"],
            dataset_size=len(merged),
            labels_added=kept,
        )
        store.record_promotion(pointer["version"], manifest)
        report["promoted"] = True
        report["version"] = pointer["version"]
        report["fingerprint"] = pointer["fingerprint"]
    else:
        report["reason"] = decision.reason
    _write_cycle_report(store, report)
    return report


def _write_cycle_report(store: VersionStore, report: dict) -> None:
    cycles_dir = store.directory / "cycles"
    cycles_dir.mkdir(parents=True, exist_ok=True)
    index = _next_cycle_index(cycles_dir)
    report["cycle"] = index
    save_json(report, cycles_dir / f"cycle_{index:05d}.json")


def run_cycles(
    cycles: int,
    replay: Union[ReplayLog, str, Path],
    dataset_path: Union[str, Path],
    store: Union[VersionStore, str, Path],
    config: Optional[FlywheelConfig] = None,
    fault_injector: Optional[FaultInjector] = None,
) -> list:
    """Run ``cycles`` sequential flywheel turns; returns their reports.

    Later cycles see the dataset earlier ones grew, so an unchanged
    replay log converges after one productive turn (everything logged is
    then deduplicated away) — looping is safe, not compounding.
    """
    if cycles < 1:
        raise FlywheelError("cycles must be >= 1")
    cache = ProblemCache()
    reports = []
    for index in range(cycles):
        logger.info("flywheel cycle %d/%d", index + 1, cycles)
        reports.append(
            run_cycle(
                replay,
                dataset_path,
                store,
                config,
                fault_injector=fault_injector,
                problem_cache=cache,
            )
        )
    return reports
