"""Retraining: fold flywheel labels into the dataset, train a candidate.

New labels pass through the paper's Selective Data Pruning filter
*before* joining the dataset — a relabeling pass that produced a bad
label (low approximation ratio) must not poison the training set the
incumbent was trained on. The base dataset is taken as-is: it already
went through SDP when it was generated, and re-pruning it here would
silently change the incumbent's own training distribution between
cycles.

Training is fully seeded (model init and mini-batch shuffling both
derive from ``RetrainConfig.seed``), so the candidate's weights — and
therefore its fingerprint — are a pure function of
``(base dataset, new labels, config)``. That is the property the
acceptance criterion leans on: rerunning a cycle with the same seed
reproduces the same promoted checkpoint fingerprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.data.dataset import QAOADataset, QAOARecord
from repro.data.pruning import selective_data_pruning
from repro.exceptions import FlywheelError
from repro.gnn.predictor import QAOAParameterPredictor
from repro.pipeline.training import Trainer, TrainingConfig
from repro.utils.logging import get_logger

logger = get_logger(__name__)


@dataclass(frozen=True)
class RetrainConfig:
    """Knobs for one candidate-training pass."""

    arch: str = "gin"
    hidden_dim: int = 32
    num_layers: int = 2
    epochs: int = 30
    batch_size: int = 16
    learning_rate: float = 1e-3
    sdp_threshold: float = 0.7
    selective_rate: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if self.epochs < 1:
            raise FlywheelError("epochs must be >= 1")
        if self.batch_size < 1:
            raise FlywheelError("batch_size must be >= 1")


@dataclass
class RetrainReport:
    """What the retrain step did, JSON-safe via :meth:`describe`."""

    new_labels: int
    labels_kept: int
    labels_pruned: int
    dataset_size: int
    final_loss: float

    def describe(self) -> dict:
        return {
            "new_labels": self.new_labels,
            "labels_kept": self.labels_kept,
            "labels_pruned": self.labels_pruned,
            "dataset_size": self.dataset_size,
            "final_loss": self.final_loss,
        }


def fold_labels(
    base: QAOADataset,
    new_records: Sequence[QAOARecord],
    config: RetrainConfig,
) -> Tuple[QAOADataset, int]:
    """SDP-filter the new labels and merge them into a fresh dataset.

    Returns ``(merged dataset, kept count)``; the base dataset object is
    not mutated.
    """
    kept: List[QAOARecord] = list(new_records)
    if new_records:
        filtered, report = selective_data_pruning(
            QAOADataset(list(new_records)),
            threshold=config.sdp_threshold,
            selective_rate=config.selective_rate,
            rng=config.seed,
        )
        kept = list(filtered.records)
        if report.pruned:
            logger.info(
                "SDP pruned %d/%d flywheel labels (threshold %.2f)",
                report.pruned,
                len(new_records),
                config.sdp_threshold,
            )
    merged = QAOADataset(list(base.records))
    merged.extend(kept)
    return merged, len(kept)


def fit_model(
    dataset: QAOADataset, config: RetrainConfig
) -> Tuple[QAOAParameterPredictor, float]:
    """Seeded model construction + training on ``dataset``.

    Returns ``(trained model, final loss)``; both are deterministic
    functions of the dataset contents and the config.
    """
    if not len(dataset):
        raise FlywheelError("cannot train a candidate on an empty dataset")
    model = QAOAParameterPredictor(
        arch=config.arch,
        p=dataset.depth(),
        hidden_dim=config.hidden_dim,
        num_layers=config.num_layers,
        rng=config.seed,
    )
    trainer = Trainer(
        model,
        TrainingConfig(
            epochs=config.epochs,
            batch_size=config.batch_size,
            learning_rate=config.learning_rate,
            seed=config.seed,
        ),
        rng=config.seed,
    )
    history = trainer.fit(dataset)
    model.eval()
    return model, float(history.final_loss)


def train_candidate(
    base: QAOADataset,
    new_records: Sequence[QAOARecord],
    config: RetrainConfig,
) -> Tuple[QAOAParameterPredictor, QAOADataset, RetrainReport]:
    """Train a candidate on base + SDP-filtered new labels.

    Returns ``(model, merged dataset, report)``. Deterministic for
    fixed inputs and config.
    """
    merged, kept = fold_labels(base, new_records, config)
    model, final_loss = fit_model(merged, config)
    report = RetrainReport(
        new_labels=len(new_records),
        labels_kept=kept,
        labels_pruned=len(new_records) - kept,
        dataset_size=len(merged),
        final_loss=final_loss,
    )
    logger.info(
        "trained candidate on %d records (%d new) — final loss %.5f",
        report.dataset_size,
        report.labels_kept,
        report.final_loss,
    )
    return model, merged, report
