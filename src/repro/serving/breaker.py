"""Circuit breaker for the model path of the prediction service.

A tiny three-state (closed / open / half-open) breaker guarding the GNN
forward path. Model calls that fail — exceptions *or* micro-batch
timeouts — count as consecutive failures; at ``failure_threshold`` the
breaker opens and the service stops paying the model's latency/failure
cost, degrading every request straight to the classical fallback chain.
After ``reset_timeout_s`` the breaker half-opens and admits a single
probe request: success closes it, failure re-opens it for another full
window.

The clock is injectable (monotonic by default) so tests can march
through open -> half-open -> closed transitions without sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with timed half-open probes.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip the breaker open.
    reset_timeout_s:
        Seconds the breaker stays open before admitting a probe.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout_s: float = 30.0,
        clock: Optional[Callable[[], float]] = None,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout_s < 0:
            raise ValueError(
                f"reset_timeout_s must be >= 0, got {reset_timeout_s}"
            )
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_s = float(reset_timeout_s)
        self._clock = clock if clock is not None else time.monotonic
        self._lock = threading.Lock()
        self._state = STATE_CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probe_in_flight = False
        self.trips = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state, advancing open -> half_open when due."""
        with self._lock:
            self._advance()
            return self._state

    def allow(self) -> bool:
        """Whether the next model call may proceed.

        In ``half_open`` exactly one caller wins the probe slot; the
        rest are treated as open until the probe settles.
        """
        with self._lock:
            self._advance()
            if self._state == STATE_CLOSED:
                return True
            if self._state == STATE_HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                return True
            return False

    def record_success(self) -> None:
        """A model call succeeded: close and reset."""
        with self._lock:
            self._state = STATE_CLOSED
            self._consecutive_failures = 0
            self._opened_at = None
            self._probe_in_flight = False

    def record_failure(self) -> bool:
        """A model call failed; returns True when this failure trips
        the breaker open (from closed or a failed half-open probe)."""
        with self._lock:
            self._advance()
            self._consecutive_failures += 1
            self._probe_in_flight = False
            should_open = (
                self._state == STATE_HALF_OPEN
                or self._consecutive_failures >= self.failure_threshold
            )
            if should_open and self._state != STATE_OPEN:
                self._state = STATE_OPEN
                self._opened_at = self._clock()
                self.trips += 1
                return True
            if self._state == STATE_OPEN:
                # Failures reported while open (e.g. stragglers from
                # requests admitted before the trip) extend the window.
                self._opened_at = self._clock()
            return False

    def snapshot(self) -> dict:
        """JSON-safe state for ``/metrics``."""
        with self._lock:
            self._advance()
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "trips": self.trips,
                "failure_threshold": self.failure_threshold,
                "reset_timeout_s": self.reset_timeout_s,
            }

    # ------------------------------------------------------------------
    def _advance(self) -> None:
        """Open -> half-open once the reset window has elapsed.

        Caller must hold the lock.
        """
        if (
            self._state == STATE_OPEN
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.reset_timeout_s
        ):
            self._state = STATE_HALF_OPEN
            self._probe_in_flight = False
