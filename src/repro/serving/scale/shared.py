"""Read-only model weights shared across forked worker processes.

The whole point of multi-process serving is that N workers must not
mean N copies of the model. :class:`SharedWeights` is an anonymous
``MAP_SHARED`` mmap slab created in the *parent* before any worker is
forked: fork inherits the mapping, so every worker sees the same
physical pages and attaching a model is just building numpy views over
the buffer — zero copies, zero serialization.

The slab is also the hot-swap transport, and it is **double-buffered**:
two equal regions, only one active at a time. Promoting a new
checkpoint writes the new weights into the *inactive* region (visible
to every worker, because the mapping is shared both ways) and ships
only a tiny *manifest* — name/dtype/shape/offset per parameter — over
each worker's control pipe. A worker "loads" the new model by
re-slicing the buffer at the manifest's offsets. Because the active
region is never written, requests in flight during a swap keep
computing over the exact weights they started with — no torn
half-old/half-new reads. The pool calls :meth:`SharedWeights.activate`
only after every worker has drained and acked, flipping which region
the next swap may overwrite. Weights that outgrow a region fall back
to shipping arrays inline through the pipe: slower, but a swap never
fails for fitting reasons.

Layout manifests are plain dicts (JSON-safe except for the inline
fallback) so they cross the pipe cheaply; writes are coordinated by
the pool's swap barrier, never lock-free.
"""

from __future__ import annotations

import mmap
from typing import Dict, Optional, Tuple

import numpy as np

from repro.gnn.predictor import QAOAParameterPredictor
from repro.serving.registry import model_fingerprint
from repro.serving.scale.config import ScaleError

#: Per-region capacity = max(model bytes * HEADROOM, 1 MiB) — room for
#: a promoted model to grow (wider layers, deeper p) without re-forking.
DEFAULT_HEADROOM = 4.0
MIN_CAPACITY = 1 << 20
#: Double buffer: swaps write the inactive region, so the active one is
#: never torn under in-flight requests.
NUM_REGIONS = 2


def model_meta(model: QAOAParameterPredictor) -> dict:
    """Constructor kwargs that rebuild ``model``'s architecture.

    A superset of the checkpoint schema: the forward pass must be
    *bit-identical* after a rebuild, so everything that shapes it —
    head width, output scaling, readout, attention heads — is carried
    explicitly rather than assumed default.
    """
    meta = {
        "arch": model.arch,
        "p": model.p,
        "in_dim": model.in_dim,
        "feature_kind": model.feature_kind,
        "hidden_dim": model.encoder.out_dim,
        "num_layers": len(model.encoder.layers),
        "dropout": model.encoder.dropouts[0].rate,
        "head_hidden": model.head_lin1.out_features,
        "output_scaling": model.output_scaling,
        "readout_kind": model.readout_kind,
    }
    first = model.encoder.layers[0]
    if hasattr(first, "num_heads"):
        meta["gat_heads"] = int(first.num_heads)
    return meta


class SharedWeights:
    """A fork-inherited weight slab plus its layout bookkeeping."""

    def __init__(self, capacity: int, regions: int = NUM_REGIONS):
        if capacity < 1:
            raise ScaleError(f"capacity must be >= 1, got {capacity}")
        if regions < 2:
            raise ScaleError(f"regions must be >= 2, got {regions}")
        #: Per-region capacity; the mapping holds ``regions`` of these.
        self.capacity = int(capacity)
        self.regions = int(regions)
        # Anonymous MAP_SHARED mapping: inherited by forked children,
        # writes on either side visible to all. Untouched headroom
        # pages are never faulted in, so the extra region is free
        # until the first swap.
        self._mmap = mmap.mmap(-1, self.capacity * self.regions)
        #: Region the *committed* manifest points at; ``write`` targets
        #: the next region over and :meth:`activate` flips this only
        #: after the pool's swap barrier has every worker's ack.
        self._active_region: Optional[int] = None

    # ------------------------------------------------------------------
    @classmethod
    def for_model(
        cls,
        model: QAOAParameterPredictor,
        headroom: float = DEFAULT_HEADROOM,
    ) -> Tuple["SharedWeights", dict]:
        """Allocate a slab sized for ``model`` and write it in."""
        state = model.state_dict()
        need = sum(
            np.ascontiguousarray(value).nbytes for value in state.values()
        )
        capacity = max(MIN_CAPACITY, int(need * max(1.0, headroom)))
        shared = cls(capacity)
        manifest = shared.write(model)
        shared.activate(manifest["region"])
        return shared, manifest

    def _next_region(self) -> int:
        """The region the next ``write`` may overwrite safely."""
        if self._active_region is None:
            return 0
        return (self._active_region + 1) % self.regions

    def activate(self, region: int) -> None:
        """Commit ``region`` as live — call only after the swap barrier.

        Until this is called, the previously active region (the one
        every worker's views point at) is never overwritten, so a
        failed or partial swap leaves the serving weights intact.
        """
        region = int(region)
        if not 0 <= region < self.regions:
            raise ScaleError(f"region {region} out of range")
        self._active_region = region

    def write(self, model: QAOAParameterPredictor) -> dict:
        """Lay ``model``'s weights into the inactive region.

        Returns the manifest (with absolute slab offsets and the target
        ``region``). The write never touches the active region, so
        in-flight requests keep reading the weights they started with;
        the caller activates the region once every worker has acked.
        Raises :class:`ScaleError` when the weights do not fit a region
        — the caller (the pool's swap path) then ships them inline.
        """
        state = model.state_dict()
        region = self._next_region()
        base = region * self.capacity
        offset = 0
        entries = []
        chunks = []
        for name in sorted(state):
            array = np.ascontiguousarray(state[name], dtype=np.float64)
            entries.append(
                {
                    "name": name,
                    "dtype": str(array.dtype),
                    "shape": list(array.shape),
                    "offset": base + offset,
                    "nbytes": int(array.nbytes),
                }
            )
            chunks.append((base + offset, array))
            offset += array.nbytes
        if offset > self.capacity:
            raise ScaleError(
                f"model needs {offset} bytes, slab region holds "
                f"{self.capacity}"
            )
        for start, array in chunks:
            self._mmap[start : start + array.nbytes] = array.tobytes()
        return {
            "fingerprint": model_fingerprint(model),
            "model": model_meta(model),
            "entries": entries,
            "total_bytes": offset,
            "region": region,
        }

    # ------------------------------------------------------------------
    def views(self, manifest: dict) -> Dict[str, np.ndarray]:
        """Read-only arrays over the slab, one per parameter."""
        buffer = memoryview(self._mmap)
        views: Dict[str, np.ndarray] = {}
        for entry in manifest["entries"]:
            start = int(entry["offset"])
            stop = start + int(entry["nbytes"])
            array = np.frombuffer(
                buffer[start:stop], dtype=np.dtype(entry["dtype"])
            ).reshape(tuple(entry["shape"]))
            array.flags.writeable = False
            views[entry["name"]] = array
        return views

    def close(self) -> None:
        """Release the mapping (workers keep their inherited copy)."""
        try:
            self._mmap.close()
        except BufferError:  # pragma: no cover - live views keep it open
            pass


def build_model(
    manifest: dict, shared: Optional[SharedWeights]
) -> QAOAParameterPredictor:
    """Instantiate a predictor whose parameters *view* the shared slab.

    With an ``inline_state`` manifest (slab overflow fallback) the
    arrays ship by value instead. Either way the model is eval-mode and
    its output is bit-identical to one loaded from the checkpoint the
    weights came from: parameter values are exact copies/views and the
    forward pass runs the same kernels.
    """
    model = QAOAParameterPredictor(**manifest["model"], rng=0)
    if "inline_state" in manifest:
        state = {
            name: np.asarray(value, dtype=np.float64)
            for name, value in manifest["inline_state"].items()
        }
        model.load_state_dict(state)
    else:
        if shared is None:
            raise ScaleError("manifest references a slab but none is attached")
        views = shared.views(manifest)
        params = dict(model.named_parameters())
        missing = set(params) - set(views)
        unexpected = set(views) - set(params)
        if missing or unexpected:
            raise ScaleError(
                f"shared-weight manifest mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in params.items():
            view = views[name]
            if view.shape != param.data.shape:
                raise ScaleError(
                    f"shape mismatch for {name}: "
                    f"{view.shape} != {param.data.shape}"
                )
            # Zero-copy: the parameter *is* the shared read-only view.
            param.data = view
    model.eval()
    return model


def inline_manifest(model: QAOAParameterPredictor) -> dict:
    """A manifest that carries the weights by value (no slab needed)."""
    return {
        "fingerprint": model_fingerprint(model),
        "model": model_meta(model),
        "entries": [],
        "total_bytes": 0,
        "inline_state": {
            name: value for name, value in model.state_dict().items()
        },
    }
