"""Planetary-scale serving: async front-end, forked workers, sharding.

The scale stack multiplies the single-process server out to N worker
processes without giving up any of its guarantees:

- :class:`ScaleServingServer` — one asyncio event loop doing HTTP
  parse, admission control, and WL-hash routing (no model work).
- :class:`WorkerPool` / ``worker_main`` — forked processes each running
  a full :class:`~repro.serving.service.PredictionService` over
  read-only weights shared via an mmap slab (:class:`SharedWeights`);
  predictions are bit-identical to the single-process server.
- Sharded caching — :func:`repro.serving.cache.shard_index` partitions
  the WL-hash space so each worker's cache is authoritative for its
  shard; snapshot/warm-up carries the cache across restarts/hot-swaps.
- :class:`AdmissionController` — admit / degrade / shed gate plus
  deadline drops, so ``/predict`` never hangs under overload.

See DESIGN.md §13 and the README "Serving at scale" quickstart.
"""

from repro.serving.scale.admission import (
    ADMIT,
    DEGRADE,
    SHED,
    AdmissionController,
)
from repro.serving.scale.config import ScaleConfig, ScaleError
from repro.serving.scale.frontend import ScaleServingServer
from repro.serving.scale.loadgen import (
    graph_request_bodies,
    run_load,
    sweep_concurrency,
)
from repro.serving.scale.pool import WorkerError, WorkerPool
from repro.serving.scale.shared import (
    SharedWeights,
    build_model,
    inline_manifest,
)
from repro.serving.scale.worker import worker_main

__all__ = [
    "ADMIT",
    "DEGRADE",
    "SHED",
    "AdmissionController",
    "ScaleConfig",
    "ScaleError",
    "ScaleServingServer",
    "graph_request_bodies",
    "run_load",
    "sweep_concurrency",
    "WorkerError",
    "WorkerPool",
    "SharedWeights",
    "build_model",
    "inline_manifest",
    "worker_main",
]
