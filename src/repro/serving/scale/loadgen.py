"""Closed-loop HTTP load generator for the serving benchmarks.

Measures a serving endpoint the way capacity planning needs it
measured: N closed-loop clients (each sends, waits for the full
response, sends again — offered load adapts to what the server can
absorb) over persistent keep-alive connections, recording per-request
latency and status. Sweeping the concurrency level yields the
*max-sustainable-QPS* curve: throughput climbs until the server
saturates, after which a healthy server sheds (503 + Retry-After)
instead of letting p99 run away.

Raw sockets, not ``http.client``: the generator must be cheap enough
that the *server* is the bottleneck being measured, and prebuilding
request bytes once per workload graph keeps the per-request client
cost to a send + a recv parse.

Also usable standalone for the CI smoke job::

    PYTHONPATH=src python -m repro.serving.scale.loadgen \
        --port 8000 --concurrency 8 --duration 2
"""

from __future__ import annotations

import json
import socket
import threading
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.serving.scale.config import ScaleError

_RECV_CHUNK = 65536


def make_predict_request(
    body: bytes, host: str = "127.0.0.1", path: str = "/predict"
) -> bytes:
    """Prebuilt HTTP/1.1 keep-alive POST, ready to send verbatim."""
    return (
        f"POST {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: keep-alive\r\n\r\n"
    ).encode() + body


def graph_request_bodies(graphs) -> List[bytes]:
    """Serialize a workload of graphs once, up front."""
    bodies = []
    for graph in graphs:
        bodies.append(
            json.dumps(
                {
                    "num_nodes": graph.num_nodes,
                    "edges": [[u, v] for u, v in graph.edges],
                }
            ).encode()
        )
    return bodies


class _Response:
    __slots__ = ("status", "retry_after", "body")

    def __init__(self, status: int, retry_after: Optional[str], body: bytes):
        self.status = status
        self.retry_after = retry_after
        self.body = body


def _read_response(sock: socket.socket, buffer: bytearray) -> _Response:
    """Parse one keep-alive HTTP response off ``sock``."""
    while b"\r\n\r\n" not in buffer:
        chunk = sock.recv(_RECV_CHUNK)
        if not chunk:
            raise ConnectionError("server closed connection mid-response")
        buffer.extend(chunk)
    head_end = buffer.index(b"\r\n\r\n")
    head = bytes(buffer[:head_end]).decode("latin-1")
    del buffer[: head_end + 4]
    lines = head.split("\r\n")
    status = int(lines[0].split(None, 2)[1])
    length = 0
    retry_after = None
    for line in lines[1:]:
        name, _, value = line.partition(":")
        name = name.strip().lower()
        if name == "content-length":
            length = int(value.strip())
        elif name == "retry-after":
            retry_after = value.strip()
    while len(buffer) < length:
        chunk = sock.recv(_RECV_CHUNK)
        if not chunk:
            raise ConnectionError("server closed connection mid-body")
        buffer.extend(chunk)
    body = bytes(buffer[:length])
    del buffer[:length]
    return _Response(status, retry_after, body)


class _ClientStats:
    __slots__ = ("latencies_ms", "statuses", "retry_after_present",
                 "retry_after_missing", "errors")

    def __init__(self):
        self.latencies_ms: List[float] = []
        self.statuses: Dict[int, int] = {}
        self.retry_after_present = 0
        self.retry_after_missing = 0
        self.errors = 0


def _client_loop(
    host: str,
    port: int,
    requests: Sequence[bytes],
    stop_at: float,
    stats: _ClientStats,
    offset: int,
) -> None:
    sock = socket.create_connection((host, port), timeout=10.0)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    buffer = bytearray()
    index = offset % len(requests)
    try:
        while time.monotonic() < stop_at:
            request = requests[index]
            index = (index + 1) % len(requests)
            start = time.perf_counter()
            try:
                sock.sendall(request)
                response = _read_response(sock, buffer)
            except (ConnectionError, socket.timeout, OSError):
                stats.errors += 1
                try:
                    sock.close()
                except OSError:
                    pass
                sock = socket.create_connection((host, port), timeout=10.0)
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                buffer.clear()
                continue
            stats.latencies_ms.append(
                (time.perf_counter() - start) * 1000.0
            )
            stats.statuses[response.status] = (
                stats.statuses.get(response.status, 0) + 1
            )
            if response.status == 503:
                if response.retry_after is not None:
                    stats.retry_after_present += 1
                else:
                    stats.retry_after_missing += 1
    finally:
        try:
            sock.close()
        except OSError:
            pass


def run_load(
    host: str,
    port: int,
    bodies: Sequence[bytes],
    concurrency: int,
    duration_s: float,
) -> dict:
    """Drive ``concurrency`` closed-loop clients for ``duration_s``.

    Returns aggregate throughput, the status histogram, latency
    percentiles over *successful* (non-shed) requests, and whether
    every 503 carried its Retry-After header.
    """
    if not bodies:
        raise ScaleError("load generator needs at least one request body")
    if concurrency < 1:
        raise ScaleError(f"concurrency must be >= 1, got {concurrency}")
    requests = [make_predict_request(body, host=host) for body in bodies]
    stats = [_ClientStats() for _ in range(concurrency)]
    stop_at = time.monotonic() + duration_s
    started = time.monotonic()
    threads = [
        threading.Thread(
            target=_client_loop,
            args=(host, port, requests, stop_at, stats[i], i),
            name=f"repro-loadgen-{i}",
            daemon=True,
        )
        for i in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=duration_s + 30.0)
    elapsed = time.monotonic() - started

    latencies: List[float] = []
    statuses: Dict[str, int] = {}
    retry_after_present = 0
    retry_after_missing = 0
    errors = 0
    for client in stats:
        latencies.extend(client.latencies_ms)
        errors += client.errors
        retry_after_present += client.retry_after_present
        retry_after_missing += client.retry_after_missing
        for status, count in client.statuses.items():
            statuses[str(status)] = statuses.get(str(status), 0) + count
    answered = sum(
        count for status, count in statuses.items() if status != "503"
    )
    total = sum(statuses.values())
    percentiles: Dict[str, Optional[float]] = {
        "p50_ms": None,
        "p90_ms": None,
        "p99_ms": None,
        "max_ms": None,
    }
    if latencies:
        samples = np.asarray(latencies, dtype=np.float64)
        percentiles = {
            "p50_ms": float(np.percentile(samples, 50)),
            "p90_ms": float(np.percentile(samples, 90)),
            "p99_ms": float(np.percentile(samples, 99)),
            "max_ms": float(samples.max()),
        }
    return {
        "concurrency": concurrency,
        "duration_s": round(elapsed, 3),
        "requests": total,
        "achieved_qps": round(total / elapsed, 2) if elapsed > 0 else 0.0,
        "answered_qps": round(answered / elapsed, 2) if elapsed > 0 else 0.0,
        "statuses": statuses,
        "connection_errors": errors,
        "retry_after": {
            "present": retry_after_present,
            "missing": retry_after_missing,
        },
        **percentiles,
    }


def sweep_concurrency(
    host: str,
    port: int,
    bodies: Sequence[bytes],
    levels: Sequence[int],
    duration_s: float,
) -> dict:
    """QPS at each concurrency level, plus the max-sustainable point.

    "Sustainable" means answered (non-503) throughput: past saturation,
    shed responses inflate raw request counts without representing
    served capacity.
    """
    runs = [
        run_load(host, port, bodies, concurrency, duration_s)
        for concurrency in levels
    ]
    best = max(runs, key=lambda run: run["answered_qps"])
    return {
        "levels": runs,
        "max_sustainable_qps": best["answered_qps"],
        "best_concurrency": best["concurrency"],
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (used by the CI serving-scale smoke job)."""
    import argparse

    from repro.graphs.generators import erdos_renyi_graph

    parser = argparse.ArgumentParser(
        description="closed-loop load generator for repro serving"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--duration", type=float, default=2.0)
    parser.add_argument("--num-graphs", type=int, default=16)
    parser.add_argument("--nodes", type=int, default=10)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    graphs = [
        erdos_renyi_graph(args.nodes, 0.5, rng=args.seed + i)
        for i in range(args.num_graphs)
    ]
    report = run_load(
        args.host,
        args.port,
        graph_request_bodies(graphs),
        args.concurrency,
        args.duration,
    )
    print(json.dumps(report, indent=2))
    shed = report["statuses"].get("503", 0)
    if shed and report["retry_after"]["missing"]:
        return 1  # a 503 without Retry-After violates the shedding contract
    non_ok = sum(
        count
        for status, count in report["statuses"].items()
        if status not in ("200", "503")
    )
    return 2 if non_ok else 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    raise SystemExit(main())
