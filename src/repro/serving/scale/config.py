"""Knobs for the multi-process serving stack.

:class:`ScaleConfig` covers everything above a single worker's
:class:`~repro.serving.service.ServingConfig`: how many worker
processes to fork, how much traffic the front-end admits before
degrading and shedding, and how the front-end's per-worker circuit
breakers are tuned. The per-worker config rides along unchanged — each
worker process runs a full, ordinary :class:`PredictionService`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ReproError


class ScaleError(ReproError):
    """Invalid scale-serving configuration or a dead worker pool."""


@dataclass(frozen=True)
class ScaleConfig:
    """Front-end + worker-pool configuration.

    Attributes
    ----------
    workers:
        Worker processes to fork. Each owns one shard of the WL-hash
        space (its prediction cache is that shard's partition).
    max_inflight:
        Requests allowed in flight to workers before the front-end
        stops routing and answers from its fallback chain (degrade).
    shed_factor:
        Multiple of ``max_inflight`` past which requests are shed
        outright with 503 + Retry-After instead of degraded.
    shed_deadline_ms:
        Per-request deadline on the worker path; an admitted request
        still unanswered past it is dropped with 503 + Retry-After
        rather than queued deeper.
    retry_after_s:
        The Retry-After header value on shed responses.
    inference_threads:
        Threads per worker draining its request pipe into the
        micro-batcher (concurrency inside one worker process).
    l1_cache_size:
        Entries in the front-end's hot-set cache (0 disables it). The
        worker shards stay authoritative; the L1 only short-circuits
        the pipe round-trip for the hottest WL classes.
    breaker_threshold / breaker_reset_s:
        Per-worker circuit breaker in the front-end: consecutive
        worker failures/timeouts that trip it, and how long a tripped
        worker's shard is served from fallbacks before a probe.
    swap_timeout_s:
        How long a hot-swap waits for every worker to drain and ack.
    """

    workers: int = 2
    max_inflight: int = 64
    shed_factor: float = 2.0
    shed_deadline_ms: float = 1000.0
    retry_after_s: float = 1.0
    inference_threads: int = 4
    l1_cache_size: int = 2048
    breaker_threshold: int = 5
    breaker_reset_s: float = 5.0
    swap_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ScaleError(f"workers must be >= 1, got {self.workers}")
        if self.max_inflight < 1:
            raise ScaleError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.shed_factor < 1.0:
            raise ScaleError(
                f"shed_factor must be >= 1.0, got {self.shed_factor}"
            )
        if self.shed_deadline_ms <= 0:
            raise ScaleError(
                f"shed_deadline_ms must be positive, got {self.shed_deadline_ms}"
            )
        if self.inference_threads < 1:
            raise ScaleError(
                f"inference_threads must be >= 1, got {self.inference_threads}"
            )
        if self.l1_cache_size < 0:
            raise ScaleError(
                f"l1_cache_size must be >= 0, got {self.l1_cache_size}"
            )

    @property
    def shed_limit(self) -> int:
        """Inflight count at which requests are shed with 503."""
        return max(self.max_inflight + 1, int(self.max_inflight * self.shed_factor))
