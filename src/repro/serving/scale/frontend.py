"""Non-blocking HTTP front-end over the worker pool.

The front-end replaces the thread-per-connection server on the scale
path. One asyncio event loop does *parse, admission, and routing only*:

1. Parse the request (manual HTTP/1.1 over asyncio streams — no
   thread spawn, no readline-per-byte handler machinery).
2. Build the graph, compute its 1-WL hash **once** (it is the shard
   router, the cache key, and the replay dedup key).
3. Check the hot-set L1 cache — the worker shards stay authoritative,
   the L1 only short-circuits the pipe round-trip for WL classes hot
   enough to repeat within a couple thousand requests.
4. Admission gate (:mod:`repro.serving.scale.admission`): admit to the
   owning shard, degrade to the front-end fallback chain, or shed
   with 503 + Retry-After. Admitted requests carry a deadline; one
   unanswered past it is dropped with 503 rather than queued deeper.
5. Per-worker circuit breakers (PR 5's
   :class:`~repro.serving.breaker.CircuitBreaker`): worker failures
   and deadline drops trip the shard onto the fallback chain until a
   probe succeeds. A *dead* worker additionally schedules one
   background respawn — the pool forks a replacement on the current
   manifest, its cache shard is warmed from the latest snapshot, and
   the restart is counted in ``/metrics`` — while traffic for the
   shard keeps degrading to fallbacks until the replacement is live.

Replay logging and the flywheel watcher both live here, in the single
front-end process: the replay log keeps its single-writer invariant no
matter how many workers serve, and the watcher's
``service.swap_model(...)`` contract is satisfied by this class — a
promoted checkpoint is written into the shared slab and barriered
across every worker before the swap is acked.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Tuple

from repro.exceptions import ReproError
from repro.gnn.predictor import QAOAParameterPredictor
from repro.graphs.canonical import wl_canonical_hash
from repro.qaoa.fixed_angles import FixedAngleTable
from repro.serving.breaker import CircuitBreaker
from repro.serving.cache import PredictionCache
from repro.serving.fallbacks import FallbackChain
from repro.serving.http import (
    DEFAULT_MAX_REQUEST_EDGES,
    DEFAULT_MAX_REQUEST_NODES,
    MAX_REQUEST_BYTES,
    graph_from_payload,
)
from repro.serving.metrics import ServingMetrics
from repro.serving.registry import ModelRegistry
from repro.serving.scale.admission import ADMIT, DEGRADE, AdmissionController
from repro.serving.scale.config import ScaleConfig, ScaleError
from repro.serving.scale.pool import WorkerPool
from repro.serving.service import PredictionResult
from repro.utils.logging import get_logger

logger = get_logger(__name__)

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    500: "Internal Server Error",
    503: "Service Unavailable",
}
_MAX_HEADERS = 64


class ScaleServingServer:
    """Asyncio front-end + worker pool behind the PR 2 server's API.

    Exposes the same surface the single-process
    :class:`~repro.serving.http.ServingHTTPServer` does (``port``,
    ``start_background``, ``serve_forever``, ``close``, context
    manager) plus the :class:`~repro.flywheel.watcher.ModelWatcher`
    service contract (``registry`` + ``swap_model``), so the CLI and
    the flywheel drive either stack interchangeably.
    """

    def __init__(
        self,
        pool: WorkerPool,
        model: Optional[QAOAParameterPredictor] = None,
        host: str = "127.0.0.1",
        port: int = 8000,
        scale_config: Optional[ScaleConfig] = None,
        replay_log=None,
        fixed_angle_table: Optional[FixedAngleTable] = None,
        cache_snapshot_path=None,
        max_request_nodes: int = DEFAULT_MAX_REQUEST_NODES,
        max_request_edges: int = DEFAULT_MAX_REQUEST_EDGES,
    ):
        self.pool = pool
        self.host = host
        self._requested_port = port
        self.max_request_nodes = max_request_nodes
        self.max_request_edges = max_request_edges
        self.scale_config = scale_config or pool.scale_config
        self.replay_log = replay_log
        self.cache_snapshot_path = cache_snapshot_path
        self.metrics = ServingMetrics()
        self.admission = AdmissionController(self.scale_config)
        #: Mirror of what the pool serves, for /healthz and the watcher.
        self.registry = ModelRegistry()
        if model is not None:
            self.registry.register("default", model, source="<scale>")
        self.default_p = pool.serving_config.default_p
        self._l1: Optional[PredictionCache] = (
            PredictionCache(max_size=self.scale_config.l1_cache_size)
            if self.scale_config.l1_cache_size > 0
            else None
        )
        self._fallbacks = {}
        self._fixed_angle_table = fixed_angle_table
        self._breakers = [
            CircuitBreaker(
                failure_threshold=self.scale_config.breaker_threshold,
                reset_timeout_s=self.scale_config.breaker_reset_s,
            )
            for _ in range(pool.num_workers)
        ]
        self._swap_lock = threading.Lock()
        # Shards with a respawn in flight (guarded by _revive_lock):
        # the first request that finds a shard dead schedules exactly
        # one revival; the rest degrade to fallbacks until it lands.
        self._revive_lock = threading.Lock()
        self._reviving: set = set()
        # CPU-bound request work — graph parse + WL hash, fallback
        # resolution, replay-log appends — runs here, off the event
        # loop, so a burst of degraded traffic cannot serialize all
        # request handling and starve worker-reply processing. Small on
        # purpose: it also bounds degraded-path concurrency.
        self._executor = ThreadPoolExecutor(
            max_workers=4, thread_name_prefix="repro-frontend-cpu"
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._thread: Optional[threading.Thread] = None
        self._bound_port: Optional[int] = None
        self._closed = False

    # ------------------------------------------------------------------
    # Model identity
    # ------------------------------------------------------------------
    def _model_key_and_p(self) -> Tuple[str, int]:
        """The cache-key prefix and depth current requests resolve under."""
        if len(self.registry):
            entry = self.registry.get()
            return entry.fingerprint, entry.model.p
        return f"fallback-p{self.default_p}", self.default_p

    def swap_model(
        self,
        model: QAOAParameterPredictor,
        name: str = "default",
        source: str = "<hot-swap>",
        version: Optional[int] = None,
    ) -> dict:
        """Hot-swap every worker onto ``model`` (watcher entry point).

        Blocks until the pool's swap barrier completes — all workers
        drained and serving the new fingerprint — then invalidates the
        front-end L1 under the old fingerprint. If the pool's swap
        fails partway it rolls acked workers back and raises before
        the registry or L1 are touched, so the front-end keeps
        reflecting the fingerprint actually being served; an
        unconfirmable rollback is flagged on ``/healthz`` as
        ``fingerprint_consistent: false``.
        """
        with self._swap_lock:
            old = self.registry.get(name) if name in self.registry else None
            summary = self.pool.swap_model(model, version=version)
            entry = self.registry.register(name, model, source=source)
            invalidated = 0
            if (
                self._l1 is not None
                and old is not None
                and old.fingerprint != entry.fingerprint
            ):
                invalidated = self._l1.invalidate_model(old.fingerprint)
            self.metrics.record_hot_swap()
            if version is not None:
                self.metrics.set_promotion_version(version)
            logger.info(
                "scale hot-swap %r: %s -> %s (%d workers, %d L1 entries "
                "invalidated)",
                name,
                old.fingerprint if old is not None else "<none>",
                entry.fingerprint,
                len(summary.get("workers", {})),
                invalidated,
            )
            summary = dict(summary)
            summary.update(
                {
                    "name": name,
                    "old_fingerprint": (
                        old.fingerprint if old is not None else None
                    ),
                    "new_fingerprint": entry.fingerprint,
                    "invalidated_l1_entries": invalidated,
                    "version": version,
                }
            )
            return summary

    # ------------------------------------------------------------------
    # Cache snapshot / warm-up
    # ------------------------------------------------------------------
    def save_cache_snapshot(self, path) -> int:
        """Export every shard's cache (plus the L1) to a JSON file."""
        snapshot = self.pool.snapshot()
        if self._l1 is not None:
            snapshot["l1_entries"] = self._l1.export_entries()
        from repro.utils.serialization import save_json

        save_json(snapshot, path)
        return len(snapshot["entries"])

    def load_cache_snapshot(self, path) -> int:
        """Warm every shard (and the L1) from a snapshot file."""
        from repro.utils.serialization import load_json

        snapshot = load_json(path)
        loaded = self.pool.warm_up(snapshot)
        if self._l1 is not None and snapshot.get("l1_entries"):
            loaded += self._l1.import_entries(snapshot["l1_entries"])
        logger.info("cache warm-up loaded %d entries from %s", loaded, path)
        return loaded

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except (
                    asyncio.IncompleteReadError,
                    ConnectionResetError,
                    asyncio.LimitOverrunError,
                ):
                    break
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = headers.get("connection", "").lower() != "close"
                try:
                    status, payload, extra = await self._route(
                        method, path, body
                    )
                except Exception as exc:  # noqa: BLE001 — last-ditch 500
                    logger.exception("unhandled scale-serving error")
                    status, payload, extra = (
                        500,
                        {"error": f"internal error: {exc!r}"},
                        (),
                    )
                writer.write(self._render(status, payload, extra))
                try:
                    await writer.drain()
                except (BrokenPipeError, ConnectionResetError):
                    self.metrics.record_dropped_response()
                    break
                if not keep_alive:
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                asyncio.CancelledError,  # shutdown cancels keep-alive waits
                BrokenPipeError,
                ConnectionResetError,
                OSError,
            ):
                pass

    async def _read_request(self, reader):
        """One HTTP/1.1 request, or ``None`` at a clean EOF."""
        line = await reader.readline()
        if not line:
            return None
        try:
            method, path, _version = line.decode("latin-1").split(None, 2)
        except ValueError:
            return None
        headers = {}
        for _ in range(_MAX_HEADERS):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            return None  # header bomb; drop the connection
        length = int(headers.get("content-length", 0) or 0)
        if length < 0 or length > MAX_REQUEST_BYTES:
            return None
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    def _render(self, status: int, payload: dict, extra=()) -> bytes:
        body = json.dumps(payload).encode()
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
        ]
        head.extend(f"{name}: {value}" for name, value in extra)
        return ("\r\n".join(head) + "\r\n\r\n").encode() + body

    async def _route(self, method: str, path: str, body: bytes):
        if method == "GET" and path == "/metrics":
            return 200, await self._metrics_payload(), ()
        if method == "GET" and path == "/healthz":
            return 200, await self._healthz_payload(), ()
        if method == "POST" and path == "/predict":
            return await self._predict(body)
        return 404, {"error": f"no route {path!r}"}, ()

    async def _predict(self, body: bytes):
        self.admission.enter()
        try:
            return await self._predict_gated(body)
        finally:
            self.admission.exit()

    def _parse_request(self, body: bytes):
        """JSON decode + graph build + WL hash (CPU-bound; executor).

        The request-size cap is enforced here, before any adjacency is
        materialized or WL-hashed, so an oversized graph costs a 400
        and nothing else.
        """
        payload = json.loads(body)
        graph = graph_from_payload(
            payload,
            max_nodes=self.max_request_nodes,
            max_edges=self.max_request_edges,
        )
        return payload, graph, wl_canonical_hash(graph)

    async def _predict_gated(self, body: bytes):
        start = time.perf_counter()
        loop = asyncio.get_running_loop()
        try:
            payload, graph, wl_hash = await loop.run_in_executor(
                self._executor, self._parse_request, body
            )
        except json.JSONDecodeError as exc:
            return 400, {"error": f"invalid JSON: {exc}"}, ()
        except ReproError as exc:
            return 400, {"error": str(exc)}, ()
        model_name = (
            payload.get("model") if isinstance(payload, dict) else None
        )
        model_key, p = self._model_key_and_p()
        key = f"{model_key}:{wl_hash}"

        # L1 hot-set hit: no admission slot, no pipe round-trip.
        if self._l1 is not None:
            hit = self._l1.get(key)
            if hit is not None:
                gammas, betas, source = hit
                return await self._answer(
                    graph, key, p, gammas, betas, source, True, start
                )

        decision = self.admission.decide()
        if decision == ADMIT:
            try:
                return await self._predict_admitted(
                    graph, model_name, wl_hash, key, p, start
                )
            finally:
                self.admission.release()
        if decision == DEGRADE:
            return await self._degraded_answer(graph, wl_hash, p, start)
        return self._shed_response()

    async def _predict_admitted(
        self, graph, model_name, wl_hash, key, p, start
    ):
        shard = self.pool.route(wl_hash)
        breaker = self._breakers[shard]
        if not self.pool.worker_alive(shard):
            self._schedule_revival(shard)
            self.admission.record_breaker_degrade()
            self.metrics.record_breaker_rejection()
            return await self._degraded_answer(graph, wl_hash, p, start)
        if not breaker.allow():
            self.admission.record_breaker_degrade()
            self.metrics.record_breaker_rejection()
            return await self._degraded_answer(graph, wl_hash, p, start)
        future, _ = self.pool.predict_future(
            graph, wl_hash, model_name=model_name
        )
        try:
            answer = await asyncio.wait_for(
                asyncio.wrap_future(future), timeout=self.admission.deadline_s
            )
        except asyncio.TimeoutError:
            # Deadline-aware drop: bounded latency beats a deep queue.
            self.admission.record_deadline_drop()
            self.metrics.record_model_failure(timed_out=True)
            if breaker.record_failure():
                self.metrics.record_breaker_trip()
            return self._shed_response()
        except Exception as exc:  # noqa: BLE001 — worker error/death
            logger.warning("worker %d predict failed (%s)", shard, exc)
            if not self.pool.worker_alive(shard):
                self._schedule_revival(shard)
            self.metrics.record_model_failure()
            if breaker.record_failure():
                self.metrics.record_breaker_trip()
            return await self._degraded_answer(graph, wl_hash, p, start)
        breaker.record_success()
        gammas = tuple(float(g) for g in answer["gammas"])
        betas = tuple(float(b) for b in answer["betas"])
        source = answer["source"]
        key = answer.get("cache_key", key)
        if self._l1 is not None:
            self._l1.put(key, (gammas, betas, source))
        return await self._answer(
            graph,
            key,
            int(answer["p"]),
            gammas,
            betas,
            source,
            bool(answer.get("cached", False)),
            start,
            worker_latency_ms=answer.get("latency_ms"),
            shard=answer.get("shard"),
        )

    async def _degraded_answer(self, graph, wl_hash, p, start):
        """Fallback-chain answer resolved off-loop (bounded CPU).

        Runs on the executor: under degrade-heavy overload this is the
        hot path, and resolving inline would serialize the event loop
        exactly when it most needs to keep draining worker replies.
        """
        chain = self._fallbacks.get(p)
        if chain is None:
            chain = FallbackChain(p, table=self._fixed_angle_table)
            self._fallbacks[p] = chain
        loop = asyncio.get_running_loop()
        fallback = await loop.run_in_executor(
            self._executor, chain.resolve, graph
        )
        key = f"fallback-p{p}:{wl_hash}"
        status, payload, extra = await self._answer(
            graph,
            key,
            p,
            fallback.gammas,
            fallback.betas,
            fallback.source,
            False,
            start,
        )
        payload["degraded"] = True
        return status, payload, extra

    def _schedule_revival(self, shard: int) -> None:
        """Kick off at most one background respawn for a dead shard."""
        if self._closed:
            return
        with self._revive_lock:
            if shard in self._reviving:
                return
            self._reviving.add(shard)
        self._executor.submit(self._revive_worker, shard)

    def _revive_worker(self, shard: int) -> None:
        """Respawn a dead worker and warm its cache shard (executor).

        The replacement boots on the pool's current manifest; its
        empty cache shard is warmed from the latest snapshot file when
        one exists, and its breaker is replaced so the first real
        request probes the fresh worker instead of waiting out the old
        breaker's open window.
        """
        try:
            if not self.pool.respawn_worker(shard):
                return
            self._breakers[shard] = CircuitBreaker(
                failure_threshold=self.scale_config.breaker_threshold,
                reset_timeout_s=self.scale_config.breaker_reset_s,
            )
            loaded = 0
            if self.cache_snapshot_path is not None:
                from repro.utils.serialization import load_json

                try:
                    snapshot = load_json(self.cache_snapshot_path)
                    loaded = self.pool.warm_up(snapshot, only_shard=shard)
                except FileNotFoundError:
                    pass  # no snapshot yet; the shard warms organically
                except Exception as exc:  # noqa: BLE001 — warm-up is best effort
                    logger.warning(
                        "shard %d warm-up after respawn failed (%s)",
                        shard,
                        exc,
                    )
            logger.info(
                "revived worker %d (%d cache entries warmed)", shard, loaded
            )
        except Exception as exc:  # noqa: BLE001 — revival must not kill serving
            logger.warning("worker %d respawn failed (%s)", shard, exc)
        finally:
            with self._revive_lock:
                self._reviving.discard(shard)

    def _shed_response(self):
        retry_after = self.admission.retry_after_s
        return (
            503,
            {
                "error": "overloaded; request shed",
                "retry_after_s": retry_after,
            },
            (("Retry-After", f"{max(1, int(round(retry_after)))}"),),
        )

    async def _answer(
        self,
        graph,
        key: str,
        p: int,
        gammas,
        betas,
        source: str,
        cached: bool,
        start: float,
        worker_latency_ms=None,
        shard=None,
    ):
        latency_s = time.perf_counter() - start
        result = PredictionResult(
            tuple(float(g) for g in gammas),
            tuple(float(b) for b in betas),
            int(p),
            source,
            cached,
            latency_s,
            key,
        )
        self.metrics.record_request(latency_s, source, cached)
        if self.replay_log is not None:
            # File append runs off-loop; the log's own lock serializes
            # concurrent writers, so record ordering is preserved per
            # request while the event loop keeps handling traffic.
            loop = asyncio.get_running_loop()
            try:
                outcome = await loop.run_in_executor(
                    self._executor,
                    self.replay_log.log_prediction,
                    graph,
                    result,
                )
            except Exception as exc:  # noqa: BLE001 — log must not break serving
                logger.warning("replay logging failed (%s); dropped", exc)
                self.metrics.record_replay_drop()
            else:
                if outcome is True:
                    self.metrics.record_replay_logged()
                elif outcome is False:
                    self.metrics.record_replay_drop()
        payload = result.to_dict()
        if worker_latency_ms is not None:
            payload["worker_latency_ms"] = worker_latency_ms
        if shard is not None:
            payload["shard"] = shard
        return 200, payload, ()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    async def _metrics_payload(self) -> dict:
        loop = asyncio.get_running_loop()
        try:
            workers = await asyncio.wait_for(
                loop.run_in_executor(None, self.pool.metrics), timeout=10.0
            )
        except Exception as exc:  # noqa: BLE001 — metrics must not 500
            workers = {"error": f"unavailable: {exc}"}
        admission = self.admission.stats()
        admission["worker_breakers"] = {
            str(shard): breaker.snapshot()
            for shard, breaker in enumerate(self._breakers)
        }
        return self.metrics.snapshot(
            cache_stats=self._l1.stats() if self._l1 is not None else None,
            models=self.registry.describe(),
            replay_stats=(
                self.replay_log.stats()
                if self.replay_log is not None
                else None
            ),
            admission=admission,
            workers=workers,
        )

    async def _healthz_payload(self) -> dict:
        loop = asyncio.get_running_loop()
        try:
            statuses = await asyncio.wait_for(
                loop.run_in_executor(None, self.pool.ping_all), timeout=10.0
            )
        except Exception:  # noqa: BLE001 — report what we know
            statuses = []
        alive = sum(1 for status in statuses if status.get("alive"))
        consistent = not self.pool.swap_inconsistent
        healthy = alive == self.pool.num_workers and consistent
        return {
            "status": "ok" if healthy else "degraded",
            "mode": "scale",
            "fingerprint_consistent": consistent,
            "workers": statuses,
            "models": self.registry.describe(),
            "config": {
                "workers": self.pool.num_workers,
                "max_inflight": self.scale_config.max_inflight,
                "shed_limit": self.scale_config.shed_limit,
                "shed_deadline_ms": self.scale_config.shed_deadline_ms,
                "inference_threads": self.scale_config.inference_threads,
                "l1_cache_size": self.scale_config.l1_cache_size,
                "default_p": self.default_p,
            },
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """Bound port (useful with ``port=0``)."""
        if self._bound_port is None:
            raise ScaleError("server is not started")
        return self._bound_port

    @property
    def address(self) -> Tuple[str, int]:
        return self.host, self.port

    async def _start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self._requested_port,
            limit=MAX_REQUEST_BYTES + (1 << 14),
        )
        self._bound_port = self._server.sockets[0].getsockname()[1]

    async def _stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Cancel lingering keep-alive connection handlers so the loop
        # closes without "task was destroyed but pending" noise.
        tasks = [
            task
            for task in asyncio.all_tasks()
            if task is not asyncio.current_task()
        ]
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)

    def start_background(self) -> "ScaleServingServer":
        """Run the event loop on a daemon thread (tests, embedding)."""
        started = threading.Event()
        failure: list = []

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                loop.run_until_complete(self._start())
            except Exception as exc:  # noqa: BLE001 — surfaced to caller
                failure.append(exc)
                started.set()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self._stop())
                loop.close()

        self._thread = threading.Thread(
            target=run, name="repro-scale-frontend", daemon=True
        )
        self._thread.start()
        started.wait(timeout=30.0)
        if failure:
            raise failure[0]
        if self._bound_port is None:
            raise ScaleError("front-end failed to start")
        return self

    def serve_forever(self) -> None:
        """Block serving requests (the ``repro serve`` foreground path)."""
        self.start_background()
        logger.info("scale serving on http://%s:%d", self.host, self.port)
        try:
            while self._thread is not None and self._thread.is_alive():
                self._thread.join(timeout=1.0)
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            pass
        finally:
            self.close()

    def close(self) -> None:
        """Stop the loop, snapshot the cache, stop workers, release logs."""
        if self._closed:
            return
        self._closed = True
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._executor.shutdown(wait=False)
        if self.cache_snapshot_path is not None:
            try:
                saved = self.save_cache_snapshot(self.cache_snapshot_path)
                logger.info(
                    "saved %d cache entries to %s",
                    saved,
                    self.cache_snapshot_path,
                )
            except Exception as exc:  # noqa: BLE001 — shutdown must finish
                logger.warning("cache snapshot save failed (%s)", exc)
        self.pool.close()
        if self.replay_log is not None:
            self.replay_log.close()

    def __enter__(self) -> "ScaleServingServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
