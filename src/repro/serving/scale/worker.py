"""The worker process: one full PredictionService fed over a pipe.

Each forked worker owns one shard of the WL-hash space. It runs an
ordinary :class:`~repro.serving.service.PredictionService` — cache,
micro-batcher, circuit breaker, fallback chain, all of it — over the
shared read-only weight slab, and speaks a tiny tagged-tuple protocol
on its end of a ``multiprocessing.Pipe``:

- ``("predict", req_id, graph, model_name, wl_hash)`` — answered
  asynchronously from a small thread pool so concurrent requests
  coalesce in the worker's micro-batcher exactly like threads did in
  the single-process server.
- ``("swap", req_id, manifest)`` — drain every in-flight predict
  (bounded by the drain timeout), then rebuild the model from the slab
  (or the manifest's inline weights) and hot-swap it into the local
  service. The ack means: all pre-swap requests answered, new
  fingerprint live, old fingerprint's cache entries gone. If the drain
  times out — one hung inference must not wedge the message loop
  forever — the worker replies ``err`` and keeps serving the old
  model.
- ``("snapshot" | "warmup" | "metrics" | "ping", ...)`` — cache
  export/import for the warm-start protocol, metrics aggregation, and
  liveness.
- ``("stop",)`` — drain and exit.

Replies are ``(req_id, "ok" | "err", payload)``; sends are serialized
by a lock so replies from pool threads never interleave. The worker
never logs replay records — the front-end owns the replay log, keeping
the PR 7 single-writer invariant intact across any number of workers.
"""

from __future__ import annotations

import os
import signal
import threading
from concurrent.futures import ThreadPoolExecutor, wait
from typing import Optional, Set

from repro.serving.service import PredictionService, ServingConfig
from repro.utils.logging import get_logger

logger = get_logger(__name__)

#: Fallback swap-drain bound; the pool passes one derived from its
#: ``swap_timeout_s`` so the worker errs out before the parent's ack
#: timeout fires.
DEFAULT_DRAIN_TIMEOUT_S = 24.0


class _WorkerState:
    """Everything one worker loop needs, bundled for the handlers."""

    def __init__(self, conn, service: PredictionService, shard: int,
                 num_shards: int, shared,
                 drain_timeout_s: float = DEFAULT_DRAIN_TIMEOUT_S):
        self.conn = conn
        self.service = service
        self.shard = shard
        self.num_shards = num_shards
        self.shared = shared
        self.drain_timeout_s = drain_timeout_s
        self.send_lock = threading.Lock()
        self.inflight: Set = set()
        self.inflight_lock = threading.Lock()

    def reply(self, req_id: int, status: str, payload) -> None:
        with self.send_lock:
            try:
                self.conn.send((req_id, status, payload))
            except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
                logger.warning("worker %d: parent pipe closed", self.shard)


def _handle_predict(state: _WorkerState, req_id, graph, model_name, wl_hash):
    try:
        result = state.service.predict(
            graph, model_name=model_name, wl_hash=wl_hash
        )
        payload = result.to_dict()
        payload["cache_key"] = result.cache_key
        payload["shard"] = state.shard
        state.reply(req_id, "ok", payload)
    except Exception as exc:  # noqa: BLE001 — fanned back to the front-end
        state.reply(req_id, "err", f"{exc.__class__.__name__}: {exc}")


def _handle_swap(state: _WorkerState, req_id, manifest):
    from repro.serving.scale.shared import build_model

    # Drain: every request admitted before the swap message finishes
    # against whichever model it started with before the new one goes
    # live. New requests queue behind this handler on the pipe. The
    # drain is bounded: one hung inference must not wedge this loop
    # forever — on timeout the worker declines the swap and keeps
    # serving the old model, which the pool reads as an unambiguous
    # failure (no rollback needed for this shard).
    with state.inflight_lock:
        pending = set(state.inflight)
    _done, not_done = wait(pending, timeout=state.drain_timeout_s)
    if not_done:
        logger.warning(
            "worker %d: swap drain timed out with %d requests in "
            "flight; old model still serving",
            state.shard,
            len(not_done),
        )
        state.reply(
            req_id,
            "err",
            f"swap drain timed out after {state.drain_timeout_s:g}s "
            f"with {len(not_done)} requests in flight; "
            "old model still serving",
        )
        return
    try:
        model = build_model(manifest, state.shared)
        summary = state.service.swap_model(
            model,
            source="<shared-swap>",
            version=manifest.get("version"),
        )
        summary["shard"] = state.shard
        state.reply(req_id, "ok", summary)
    except Exception as exc:  # noqa: BLE001 — a torn swap must not kill serving
        logger.warning("worker %d: swap failed (%s)", state.shard, exc)
        state.reply(req_id, "err", f"{exc.__class__.__name__}: {exc}")


def worker_main(
    conn,
    shared,
    manifest: Optional[dict],
    config: Optional[ServingConfig],
    shard: int,
    num_shards: int,
    inference_threads: int = 4,
    close_conns=(),
    drain_timeout_s: float = DEFAULT_DRAIN_TIMEOUT_S,
) -> None:
    """Entry point of a forked worker process (runs until "stop")."""
    from repro.serving.scale.shared import build_model

    # The parent handles SIGINT; an interrupted foreground `repro
    # serve` must not stack-trace N workers on ^C.
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    # Drop the fork-inherited ends of every sibling's pipe (and the
    # copy of our own parent end). If any worker kept another pipe's
    # write end open, a front-end killed by a signal would never
    # produce EOF and its workers would block in recv() forever.
    for other in close_conns:
        try:
            other.close()
        except OSError:  # pragma: no cover - already closed
            pass

    service = PredictionService(config=config)
    if manifest is not None:
        model = build_model(manifest, shared)
        service.registry.register("default", model, source="<shared>")
    state = _WorkerState(
        conn, service, shard, num_shards, shared,
        drain_timeout_s=drain_timeout_s,
    )
    pool = ThreadPoolExecutor(
        max_workers=max(1, int(inference_threads)),
        thread_name_prefix=f"repro-worker-{shard}",
    )
    logger.info(
        "worker %d/%d up (pid %d)", shard, num_shards, os.getpid()
    )
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break  # parent died; exit quietly
            kind = message[0]
            if kind == "predict":
                _, req_id, graph, model_name, wl_hash = message
                future = pool.submit(
                    _handle_predict, state, req_id, graph, model_name, wl_hash
                )
                with state.inflight_lock:
                    state.inflight.add(future)
                future.add_done_callback(
                    lambda fut: state.inflight.discard(fut)
                )
            elif kind == "swap":
                _, req_id, manifest = message
                _handle_swap(state, req_id, manifest)
            elif kind == "snapshot":
                _, req_id = message
                state.reply(req_id, "ok", service.cache.export_entries())
            elif kind == "warmup":
                _, req_id, entries = message
                loaded = service.cache.import_entries(entries)
                state.reply(req_id, "ok", {"loaded": loaded})
            elif kind == "metrics":
                _, req_id = message
                state.reply(req_id, "ok", service.metrics_snapshot())
            elif kind == "ping":
                _, req_id = message
                state.reply(
                    req_id,
                    "ok",
                    {
                        "shard": shard,
                        "num_shards": num_shards,
                        "pid": os.getpid(),
                        "fingerprint": (
                            service.registry.get().fingerprint
                            if len(service.registry)
                            else None
                        ),
                    },
                )
            elif kind == "stop":
                break
            else:  # pragma: no cover - protocol bug guard
                logger.warning("worker %d: unknown message %r", shard, kind)
    finally:
        pool.shutdown(wait=True)
        service.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass
