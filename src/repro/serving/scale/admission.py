"""Admission control and load shedding for the scale front-end.

The front-end never queues unboundedly and ``/predict`` never hangs.
Every request passes through a three-state admission decision keyed on
the number of requests currently in flight to the worker pool:

- ``admit`` — fewer than ``max_inflight`` requests hold worker slots:
  route to the owning shard.
- ``degrade`` — the worker path is saturated, so the request is
  answered *immediately* from the front-end's classical fallback chain
  (bounded CPU, no queueing) with a 200 tagged ``"degraded": true``.
- ``shed`` — the *total* number of requests concurrently inside the
  front-end (admitted + being parsed/answered) has passed the shed
  limit (``shed_factor * max_inflight``): even fallback work would
  melt the front-end; answer 503 with a ``Retry-After`` header.

Two counters drive this: worker *slots* (taken by ``decide() ==
admit``, returned by :meth:`release`) bound the depth of the worker
pipes, while the *concurrency* gauge (:meth:`enter`/:meth:`exit`,
wrapped around the whole request) bounds the front-end itself —
admitted requests hold both for their whole await, so a pile-up behind
slow workers is what pushes concurrency into the shed band.

Admitted requests additionally carry a deadline
(``shed_deadline_ms``): one that the worker has not answered inside it
is *dropped* with 503 + Retry-After rather than left queueing — under
overload, latency is bounded by construction because nothing waits
longer than the deadline.

The controller is pure bookkeeping (cheap, one lock); the policy is
driven by the front-end, which also wires worker failures into
per-worker :class:`~repro.serving.breaker.CircuitBreaker` instances —
a tripped worker's shard degrades to fallbacks until a probe succeeds.
"""

from __future__ import annotations

import threading

from repro.serving.scale.config import ScaleConfig

ADMIT = "admit"
DEGRADE = "degrade"
SHED = "shed"


class AdmissionController:
    """Thread/loop-safe inflight accounting + the admit/degrade/shed gate."""

    def __init__(self, config: ScaleConfig):
        self.config = config
        self._lock = threading.Lock()
        self._inflight = 0
        self._concurrent = 0
        self.admitted = 0
        self.degraded = 0
        self.shed = 0
        self.deadline_drops = 0
        self.breaker_degrades = 0
        self.max_observed_inflight = 0

    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def concurrent(self) -> int:
        return self._concurrent

    def enter(self) -> None:
        """A request entered the front-end (pair with :meth:`exit`)."""
        with self._lock:
            self._concurrent += 1
            if self._concurrent > self.max_observed_inflight:
                self.max_observed_inflight = self._concurrent

    def exit(self) -> None:
        """The request's response has been written (or abandoned)."""
        with self._lock:
            self._concurrent -= 1

    @property
    def deadline_s(self) -> float:
        return self.config.shed_deadline_ms / 1000.0

    @property
    def retry_after_s(self) -> float:
        return self.config.retry_after_s

    def decide(self) -> str:
        """Admit (and take an inflight slot), degrade, or shed.

        An ``admit`` result *must* be paired with :meth:`release` once
        the request settles; ``degrade``/``shed`` take no slot.
        """
        with self._lock:
            if self._concurrent >= self.config.shed_limit:
                self.shed += 1
                return SHED
            if self._inflight >= self.config.max_inflight:
                self.degraded += 1
                return DEGRADE
            self._inflight += 1
            self.admitted += 1
            return ADMIT

    def release(self) -> None:
        """Give back an admitted request's inflight slot."""
        with self._lock:
            self._inflight -= 1

    def record_deadline_drop(self) -> None:
        """An admitted request blew its deadline and was dropped."""
        with self._lock:
            self.deadline_drops += 1

    def record_breaker_degrade(self) -> None:
        """A request was degraded because its shard's breaker is open."""
        with self._lock:
            self.breaker_degrades += 1

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-safe counters for the /metrics admission section."""
        with self._lock:
            return {
                "inflight": self._inflight,
                "concurrent": self._concurrent,
                "max_inflight": self.config.max_inflight,
                "shed_limit": self.config.shed_limit,
                "shed_deadline_ms": self.config.shed_deadline_ms,
                "admitted": self.admitted,
                "degraded": self.degraded,
                "shed": self.shed,
                "deadline_drops": self.deadline_drops,
                "breaker_degrades": self.breaker_degrades,
                "max_observed_inflight": self.max_observed_inflight,
            }
