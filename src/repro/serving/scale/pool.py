"""The worker pool: forked processes, sharded routing, swap barrier.

:class:`WorkerPool` owns the process side of the scale stack:

- **Fork over shared weights.** Workers are forked (fork start method
  — cheap, no pickling, and the :class:`SharedWeights` slab rides in
  for free) *before* the front-end starts its event loop or threads.
- **Sharded routing.** `route(wl_hash)` partitions the WL-hash space
  with :func:`repro.serving.cache.shard_index`; a WL class always
  lands on the same worker, so each worker's prediction cache is an
  authoritative partition — no coherence traffic, no duplicate
  entries.
- **Futures over pipes.** One reader thread per worker resolves
  ``concurrent.futures.Future`` handles by request id; the asyncio
  front-end awaits them via ``asyncio.wrap_future``. A worker death
  fails that worker's pending futures and marks it dead — the
  front-end's per-worker breaker then routes its shard to fallbacks.
- **Respawn.** ``respawn_worker(shard)`` forks a replacement for a
  dead worker on the *current* manifest (so a post-swap restart
  serves the swapped weights, not the boot weights). Restart counts
  per shard ride along in ``metrics()`` for ``/metrics``; the
  front-end warms the reborn shard from the latest cache snapshot.
- **Swap barrier.** ``swap_model`` writes the new weights into the
  slab's *inactive* region (inline-ships them if they outgrew it),
  broadcasts the manifest, and blocks until every worker has drained
  and acked — the "hot-swap drains all workers" contract. Only then
  are the manifest and slab region committed; on a partial failure
  the acked workers are rolled back onto the previous manifest, and
  if any worker's state is left unknown the pool flags
  ``swap_inconsistent`` for ``/healthz``.
- **Snapshot / warm-up.** ``snapshot()`` exports every shard's cache;
  ``warm_up()`` re-routes a snapshot onto the *current* shard layout,
  so a restart — even with a different worker count — starts warm.
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
from concurrent.futures import Future, InvalidStateError
from typing import Dict, List, Optional, Tuple

from repro.gnn.predictor import QAOAParameterPredictor
from repro.graphs.graph import Graph
from repro.serving.cache import shard_index
from repro.serving.scale.config import ScaleConfig, ScaleError
from repro.serving.scale.shared import SharedWeights, inline_manifest
from repro.serving.scale.worker import worker_main
from repro.serving.service import ServingConfig
from repro.utils.logging import get_logger

logger = get_logger(__name__)


class WorkerError(ScaleError):
    """A worker answered with an error or died mid-request."""


class _WorkerHandle:
    """Parent-side state for one worker process."""

    def __init__(self, shard: int, process, conn):
        self.shard = shard
        self.process = process
        self.conn = conn
        self.alive = True
        self.send_lock = threading.Lock()
        self.pending: Dict[int, Future] = {}
        self.pending_lock = threading.Lock()
        self._ids = itertools.count()
        self.reader = threading.Thread(
            target=self._read_loop,
            name=f"repro-pool-reader-{shard}",
            daemon=True,
        )
        self.reader.start()

    # ------------------------------------------------------------------
    def request(self, kind: str, *args) -> Future:
        """Send one message; the returned future resolves on reply."""
        future: Future = Future()
        req_id = next(self._ids)
        with self.pending_lock:
            if not self.alive:
                future.set_exception(
                    WorkerError(f"worker {self.shard} is dead")
                )
                return future
            self.pending[req_id] = future
        try:
            with self.send_lock:
                self.conn.send((kind, req_id, *args))
        except (BrokenPipeError, OSError) as exc:
            with self.pending_lock:
                self.pending.pop(req_id, None)
            self._mark_dead()
            future.set_exception(
                WorkerError(f"worker {self.shard} pipe closed: {exc}")
            )
        return future

    def _read_loop(self) -> None:
        # The finally guarantees _mark_dead even if the loop body ever
        # raises: a reader that died silently would leave alive=True
        # with nobody resolving futures — a permanent shard outage.
        try:
            while True:
                try:
                    req_id, status, payload = self.conn.recv()
                except (EOFError, OSError):
                    break
                with self.pending_lock:
                    future = self.pending.pop(req_id, None)
                if future is None or future.done():
                    # Late reply to a deadline-dropped (and possibly
                    # cancelled) request: drop it on the floor.
                    continue
                try:
                    if status == "ok":
                        future.set_result(payload)
                    else:
                        future.set_exception(WorkerError(str(payload)))
                except InvalidStateError:
                    pass  # cancelled between the done() check and the set
        finally:
            self._mark_dead()

    def _mark_dead(self) -> None:
        with self.pending_lock:
            if not self.alive:
                return
            self.alive = False
            pending = list(self.pending.values())
            self.pending.clear()
        for future in pending:
            try:
                if not future.done():
                    future.set_exception(
                        WorkerError(f"worker {self.shard} died")
                    )
            except InvalidStateError:  # cancelled concurrently
                pass
        logger.warning("worker %d marked dead", self.shard)

    def stop(self, timeout: float = 5.0) -> None:
        try:
            with self.send_lock:
                self.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout)
        if self.process.is_alive():  # pragma: no cover - hung worker
            self.process.terminate()
            self.process.join(timeout)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass


class WorkerPool:
    """N forked prediction workers behind sharded request pipes."""

    def __init__(
        self,
        model: Optional[QAOAParameterPredictor] = None,
        serving_config: Optional[ServingConfig] = None,
        scale_config: Optional[ScaleConfig] = None,
    ):
        self.scale_config = scale_config or ScaleConfig()
        self.serving_config = serving_config or ServingConfig()
        self.num_workers = self.scale_config.workers
        self.shared: Optional[SharedWeights] = None
        self.manifest: Optional[dict] = None
        if model is not None:
            self.shared, self.manifest = SharedWeights.for_model(model)
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            context = multiprocessing.get_context()
        self._context = context
        self._workers: List[_WorkerHandle] = []
        self._swap_lock = threading.Lock()
        self._respawn_lock = threading.Lock()
        #: Per-shard count of workers respawned after a death.
        self.worker_restarts: Dict[int, int] = {}
        #: True when a partial swap failure left workers possibly
        #: serving different fingerprints (surfaced via /healthz).
        self.swap_inconsistent = False
        # Workers bound their swap drain below the parent's ack
        # timeout, so a hung inference yields an unambiguous "err"
        # reply (old model still serving) instead of an ack timeout.
        drain_timeout_s = max(1.0, self.scale_config.swap_timeout_s * 0.8)
        self._drain_timeout_s = drain_timeout_s
        # All pipes are created before any fork, and every child closes
        # every end that is not its own. Otherwise worker N inherits
        # worker M's parent-side end (and a copy of its own), so a
        # front-end killed by a signal would leave workers blocked in
        # recv() forever instead of seeing EOF and exiting.
        pipes = [context.Pipe() for _ in range(self.num_workers)]
        processes = []
        for shard in range(self.num_workers):
            child_conn = pipes[shard][1]
            close_in_child = [
                end
                for pair in pipes
                for end in pair
                if end is not child_conn
            ]
            process = context.Process(
                target=worker_main,
                args=(
                    child_conn,
                    self.shared,
                    self.manifest,
                    self.serving_config,
                    shard,
                    self.num_workers,
                    self.scale_config.inference_threads,
                    close_in_child,
                    drain_timeout_s,
                ),
                name=f"repro-serving-worker-{shard}",
                daemon=True,
            )
            process.start()
            processes.append(process)
        # Child ends are closed only after every fork: closing one
        # earlier would free its fd number for reuse, and a later
        # child's cleanup of the stale Connection could then close an
        # unrelated descriptor.
        for shard, process in enumerate(processes):
            parent_conn, child_conn = pipes[shard]
            child_conn.close()
            self._workers.append(_WorkerHandle(shard, process, parent_conn))
        self._closed = False

    # ------------------------------------------------------------------
    # Routing + prediction
    # ------------------------------------------------------------------
    def route(self, wl_hash: str) -> int:
        """The shard owning ``wl_hash``'s partition of the hash space."""
        return shard_index(wl_hash, self.num_workers)

    def worker(self, shard: int) -> _WorkerHandle:
        return self._workers[shard]

    def worker_alive(self, shard: int) -> bool:
        return self._workers[shard].alive

    def respawn_worker(self, shard: int) -> bool:
        """Fork a replacement for a dead worker on its shard.

        Returns ``False`` when the worker is still alive or the pool
        is closed. The replacement boots from the *current* manifest —
        including any weights hot-swapped since the original fork, as
        the slab region in ``self.manifest`` is only ever committed
        after a full swap barrier — and starts with an empty cache
        shard; the front-end warms it from the latest snapshot.
        """
        with self._respawn_lock:
            if self._closed:
                return False
            old = self._workers[shard]
            if old.alive:
                return False
            old.stop(timeout=1.0)
            parent_conn, child_conn = self._context.Pipe()
            # The fork inherits every sibling's parent-side pipe end;
            # the child closes them (plus the copy of its own parent
            # end) so a dead front-end still reads as EOF on every
            # worker's pipe. Sibling child-side ends were closed in
            # the parent at boot, so they never ride along.
            close_in_child = [parent_conn] + [
                handle.conn for handle in self._workers if handle is not old
            ]
            process = self._context.Process(
                target=worker_main,
                args=(
                    child_conn,
                    self.shared,
                    self.manifest,
                    self.serving_config,
                    shard,
                    self.num_workers,
                    self.scale_config.inference_threads,
                    close_in_child,
                    self._drain_timeout_s,
                ),
                name=f"repro-serving-worker-{shard}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._workers[shard] = _WorkerHandle(shard, process, parent_conn)
            self.worker_restarts[shard] = (
                self.worker_restarts.get(shard, 0) + 1
            )
            logger.info(
                "respawned worker %d (restart #%d)",
                shard,
                self.worker_restarts[shard],
            )
            return True

    def predict_future(
        self,
        graph: Graph,
        wl_hash: str,
        model_name: Optional[str] = None,
    ) -> Tuple[Future, int]:
        """Route one request; returns ``(future, shard)``."""
        shard = self.route(wl_hash)
        handle = self._workers[shard]
        return handle.request("predict", graph, model_name, wl_hash), shard

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def _broadcast(self, kind: str, *args, timeout: Optional[float] = None):
        futures = [
            (handle.shard, handle.request(kind, *args))
            for handle in self._workers
            if handle.alive
        ]
        results = {}
        for shard, future in futures:
            results[shard] = future.result(timeout=timeout)
        return results

    def _swap_shards(
        self, shards, manifest: dict, timeout: float
    ) -> Tuple[Dict[int, dict], Dict[int, Exception]]:
        """Send ``swap`` to ``shards``; collect per-shard acks/failures."""
        futures = []
        for shard in shards:
            handle = self._workers[shard]
            if handle.alive:
                futures.append((shard, handle.request("swap", manifest)))
        acked: Dict[int, dict] = {}
        failed: Dict[int, Exception] = {}
        for shard, future in futures:
            try:
                acked[shard] = future.result(timeout=timeout)
            except Exception as exc:  # noqa: BLE001 — collected, not raised
                failed[shard] = exc
        return acked, failed

    def swap_model(
        self,
        model: QAOAParameterPredictor,
        version: Optional[int] = None,
    ) -> dict:
        """Write new weights and barrier every worker onto them.

        The weights land in the slab's *inactive* region, so nothing a
        worker is currently serving from is overwritten; the region and
        ``self.manifest`` are committed only once *all* live workers
        have drained their in-flight requests and acked the new
        fingerprint. On a partial failure the acked workers are rolled
        back onto the previous manifest and :class:`WorkerError` is
        raised; if any worker's state cannot be confirmed (ack timeout,
        failed rollback, or no previous model to roll back to),
        ``swap_inconsistent`` is set for ``/healthz`` to surface.
        """
        with self._swap_lock:
            previous = self.manifest
            manifest = None
            if self.shared is not None:
                try:
                    manifest = self.shared.write(model)
                except ScaleError as exc:
                    logger.warning(
                        "weights outgrew the shared slab (%s); "
                        "shipping inline",
                        exc,
                    )
            if manifest is None:
                manifest = inline_manifest(model)
            if version is not None:
                manifest["version"] = int(version)
            timeout = self.scale_config.swap_timeout_s
            live = [
                handle.shard for handle in self._workers if handle.alive
            ]
            acked, failed = self._swap_shards(live, manifest, timeout)
            if not failed:
                if self.shared is not None and "region" in manifest:
                    self.shared.activate(manifest["region"])
                self.manifest = manifest
                self.swap_inconsistent = False
                return {
                    "fingerprint": manifest["fingerprint"],
                    "workers": acked,
                }
            # Partial failure: put every acked worker back on the
            # previous manifest so the pool keeps serving one
            # fingerprint. The slab region was never activated, so the
            # previous weights are intact.
            rolled_back: Dict[int, dict] = {}
            rollback_failed: Dict[int, Exception] = {}
            if previous is not None and acked:
                rolled_back, rollback_failed = self._swap_shards(
                    sorted(acked), previous, timeout
                )
            # A WorkerError means the worker replied "err" (it kept its
            # old model) or died (it serves nothing); anything else —
            # typically an ack timeout — leaves its state unknown.
            ambiguous = sorted(
                shard
                for shard, exc in failed.items()
                if not isinstance(exc, WorkerError)
            )
            if ambiguous or rollback_failed or (previous is None and acked):
                self.swap_inconsistent = True
            detail = "; ".join(
                f"shard {shard}: {exc}" for shard, exc in sorted(failed.items())
            )
            message = (
                f"swap to {manifest['fingerprint']} failed ({detail})"
            )
            if rolled_back:
                message += f"; rolled back shards {sorted(rolled_back)}"
            if rollback_failed:
                message += (
                    f"; rollback failed on {sorted(rollback_failed)}"
                )
            if self.swap_inconsistent:
                message += "; pool fingerprints may be inconsistent"
            logger.warning("%s", message)
            raise WorkerError(message)

    def snapshot(self) -> dict:
        """Every shard's cache entries, tagged with the shard layout."""
        entries: list = []
        for shard, shard_entries in self._broadcast(
            "snapshot", timeout=self.scale_config.swap_timeout_s
        ).items():
            entries.extend(shard_entries)
        return {"num_shards": self.num_workers, "entries": entries}

    def warm_up(self, snapshot: dict, only_shard: Optional[int] = None) -> int:
        """Load a snapshot, re-routing entries onto the current shards.

        Entries are re-partitioned by the WL-hash tail of their cache
        key, so a snapshot taken under a different worker count still
        lands every entry on its owning shard. ``only_shard`` restricts
        the load to one shard's partition — the respawn path warms a
        reborn worker without touching its siblings' caches.
        """
        buckets: Dict[int, list] = {}
        for entry in snapshot.get("entries", []):
            key = str(entry[0])
            wl_hash = key.rpartition(":")[2]
            try:
                shard = self.route(wl_hash)
            except (ValueError, ScaleError):
                continue  # malformed key; skip rather than refuse to start
            if only_shard is not None and shard != only_shard:
                continue
            buckets.setdefault(shard, []).append(entry)
        loaded = 0
        for shard, entries in buckets.items():
            handle = self._workers[shard]
            if not handle.alive:
                continue
            result = handle.request("warmup", entries).result(
                timeout=self.scale_config.swap_timeout_s
            )
            loaded += int(result.get("loaded", 0))
        return loaded

    def metrics(self, timeout: float = 5.0) -> Dict[str, dict]:
        """Per-shard service metrics snapshots (dead workers noted)."""
        results: Dict[str, dict] = {}
        futures = [
            (handle.shard, handle.request("metrics"))
            for handle in self._workers
            if handle.alive
        ]
        for handle in self._workers:
            if not handle.alive:
                results[str(handle.shard)] = {"status": "dead"}
        for shard, future in futures:
            try:
                results[str(shard)] = future.result(timeout=timeout)
            except Exception as exc:  # noqa: BLE001 — metrics must not raise
                results[str(shard)] = {"status": f"unavailable: {exc}"}
        for shard in range(len(self._workers)):
            payload = results.get(str(shard))
            if isinstance(payload, dict):
                payload["restarts"] = self.worker_restarts.get(shard, 0)
        return results

    def ping_all(self, timeout: float = 5.0) -> List[dict]:
        """Liveness + served fingerprint per worker (healthz payload)."""
        statuses: List[dict] = []
        for handle in self._workers:
            if not handle.alive:
                statuses.append({"shard": handle.shard, "alive": False})
                continue
            try:
                payload = handle.request("ping").result(timeout=timeout)
                payload["alive"] = True
                statuses.append(payload)
            except Exception:  # noqa: BLE001 — a hung worker reads as dead
                statuses.append({"shard": handle.shard, "alive": False})
        return statuses

    @property
    def alive_workers(self) -> int:
        return sum(1 for handle in self._workers if handle.alive)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop every worker and release the slab."""
        if self._closed:
            return
        self._closed = True
        for handle in self._workers:
            handle.stop()
        if self.shared is not None:
            self.shared.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
