"""The worker pool: forked processes, sharded routing, swap barrier.

:class:`WorkerPool` owns the process side of the scale stack:

- **Fork over shared weights.** Workers are forked (fork start method
  — cheap, no pickling, and the :class:`SharedWeights` slab rides in
  for free) *before* the front-end starts its event loop or threads.
- **Sharded routing.** `route(wl_hash)` partitions the WL-hash space
  with :func:`repro.serving.cache.shard_index`; a WL class always
  lands on the same worker, so each worker's prediction cache is an
  authoritative partition — no coherence traffic, no duplicate
  entries.
- **Futures over pipes.** One reader thread per worker resolves
  ``concurrent.futures.Future`` handles by request id; the asyncio
  front-end awaits them via ``asyncio.wrap_future``. A worker death
  fails that worker's pending futures and marks it dead — the
  front-end's per-worker breaker then routes its shard to fallbacks.
- **Swap barrier.** ``swap_model`` writes the new weights into the
  slab (inline-ships them if they outgrew it), broadcasts the
  manifest, and blocks until every worker has drained and acked — the
  "hot-swap drains all workers" contract.
- **Snapshot / warm-up.** ``snapshot()`` exports every shard's cache;
  ``warm_up()`` re-routes a snapshot onto the *current* shard layout,
  so a restart — even with a different worker count — starts warm.
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
from concurrent.futures import Future
from typing import Dict, List, Optional, Tuple

from repro.gnn.predictor import QAOAParameterPredictor
from repro.graphs.graph import Graph
from repro.serving.cache import shard_index
from repro.serving.scale.config import ScaleConfig, ScaleError
from repro.serving.scale.shared import SharedWeights, inline_manifest
from repro.serving.scale.worker import worker_main
from repro.serving.service import ServingConfig
from repro.utils.logging import get_logger

logger = get_logger(__name__)


class WorkerError(ScaleError):
    """A worker answered with an error or died mid-request."""


class _WorkerHandle:
    """Parent-side state for one worker process."""

    def __init__(self, shard: int, process, conn):
        self.shard = shard
        self.process = process
        self.conn = conn
        self.alive = True
        self.send_lock = threading.Lock()
        self.pending: Dict[int, Future] = {}
        self.pending_lock = threading.Lock()
        self._ids = itertools.count()
        self.reader = threading.Thread(
            target=self._read_loop,
            name=f"repro-pool-reader-{shard}",
            daemon=True,
        )
        self.reader.start()

    # ------------------------------------------------------------------
    def request(self, kind: str, *args) -> Future:
        """Send one message; the returned future resolves on reply."""
        future: Future = Future()
        req_id = next(self._ids)
        with self.pending_lock:
            if not self.alive:
                future.set_exception(
                    WorkerError(f"worker {self.shard} is dead")
                )
                return future
            self.pending[req_id] = future
        try:
            with self.send_lock:
                self.conn.send((kind, req_id, *args))
        except (BrokenPipeError, OSError) as exc:
            with self.pending_lock:
                self.pending.pop(req_id, None)
            self._mark_dead()
            future.set_exception(
                WorkerError(f"worker {self.shard} pipe closed: {exc}")
            )
        return future

    def _read_loop(self) -> None:
        while True:
            try:
                req_id, status, payload = self.conn.recv()
            except (EOFError, OSError):
                break
            with self.pending_lock:
                future = self.pending.pop(req_id, None)
            if future is None:
                continue  # deadline-dropped request answering late
            if status == "ok":
                future.set_result(payload)
            else:
                future.set_exception(WorkerError(str(payload)))
        self._mark_dead()

    def _mark_dead(self) -> None:
        with self.pending_lock:
            if not self.alive:
                return
            self.alive = False
            pending = list(self.pending.values())
            self.pending.clear()
        for future in pending:
            if not future.done():
                future.set_exception(
                    WorkerError(f"worker {self.shard} died")
                )
        logger.warning("worker %d marked dead", self.shard)

    def stop(self, timeout: float = 5.0) -> None:
        try:
            with self.send_lock:
                self.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout)
        if self.process.is_alive():  # pragma: no cover - hung worker
            self.process.terminate()
            self.process.join(timeout)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass


class WorkerPool:
    """N forked prediction workers behind sharded request pipes."""

    def __init__(
        self,
        model: Optional[QAOAParameterPredictor] = None,
        serving_config: Optional[ServingConfig] = None,
        scale_config: Optional[ScaleConfig] = None,
    ):
        self.scale_config = scale_config or ScaleConfig()
        self.serving_config = serving_config or ServingConfig()
        self.num_workers = self.scale_config.workers
        self.shared: Optional[SharedWeights] = None
        self.manifest: Optional[dict] = None
        if model is not None:
            self.shared, self.manifest = SharedWeights.for_model(model)
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            context = multiprocessing.get_context()
        self._workers: List[_WorkerHandle] = []
        self._swap_lock = threading.Lock()
        # All pipes are created before any fork, and every child closes
        # every end that is not its own. Otherwise worker N inherits
        # worker M's parent-side end (and a copy of its own), so a
        # front-end killed by a signal would leave workers blocked in
        # recv() forever instead of seeing EOF and exiting.
        pipes = [context.Pipe() for _ in range(self.num_workers)]
        processes = []
        for shard in range(self.num_workers):
            child_conn = pipes[shard][1]
            close_in_child = [
                end
                for pair in pipes
                for end in pair
                if end is not child_conn
            ]
            process = context.Process(
                target=worker_main,
                args=(
                    child_conn,
                    self.shared,
                    self.manifest,
                    self.serving_config,
                    shard,
                    self.num_workers,
                    self.scale_config.inference_threads,
                    close_in_child,
                ),
                name=f"repro-serving-worker-{shard}",
                daemon=True,
            )
            process.start()
            processes.append(process)
        # Child ends are closed only after every fork: closing one
        # earlier would free its fd number for reuse, and a later
        # child's cleanup of the stale Connection could then close an
        # unrelated descriptor.
        for shard, process in enumerate(processes):
            parent_conn, child_conn = pipes[shard]
            child_conn.close()
            self._workers.append(_WorkerHandle(shard, process, parent_conn))
        self._closed = False

    # ------------------------------------------------------------------
    # Routing + prediction
    # ------------------------------------------------------------------
    def route(self, wl_hash: str) -> int:
        """The shard owning ``wl_hash``'s partition of the hash space."""
        return shard_index(wl_hash, self.num_workers)

    def worker(self, shard: int) -> _WorkerHandle:
        return self._workers[shard]

    def worker_alive(self, shard: int) -> bool:
        return self._workers[shard].alive

    def predict_future(
        self,
        graph: Graph,
        wl_hash: str,
        model_name: Optional[str] = None,
    ) -> Tuple[Future, int]:
        """Route one request; returns ``(future, shard)``."""
        shard = self.route(wl_hash)
        handle = self._workers[shard]
        return handle.request("predict", graph, model_name, wl_hash), shard

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def _broadcast(self, kind: str, *args, timeout: Optional[float] = None):
        futures = [
            (handle.shard, handle.request(kind, *args))
            for handle in self._workers
            if handle.alive
        ]
        results = {}
        for shard, future in futures:
            results[shard] = future.result(timeout=timeout)
        return results

    def swap_model(
        self,
        model: QAOAParameterPredictor,
        version: Optional[int] = None,
    ) -> dict:
        """Write new weights and barrier every worker onto them.

        Returns the per-shard swap summaries once *all* live workers
        have drained their in-flight requests and acked the new
        fingerprint.
        """
        with self._swap_lock:
            manifest = None
            if self.shared is not None:
                try:
                    manifest = self.shared.write(model)
                except ScaleError as exc:
                    logger.warning(
                        "weights outgrew the shared slab (%s); "
                        "shipping inline",
                        exc,
                    )
            if manifest is None:
                manifest = inline_manifest(model)
            if version is not None:
                manifest["version"] = int(version)
            self.manifest = manifest
            summaries = self._broadcast(
                "swap", manifest, timeout=self.scale_config.swap_timeout_s
            )
            return {
                "fingerprint": manifest["fingerprint"],
                "workers": summaries,
            }

    def snapshot(self) -> dict:
        """Every shard's cache entries, tagged with the shard layout."""
        entries: list = []
        for shard, shard_entries in self._broadcast(
            "snapshot", timeout=self.scale_config.swap_timeout_s
        ).items():
            entries.extend(shard_entries)
        return {"num_shards": self.num_workers, "entries": entries}

    def warm_up(self, snapshot: dict) -> int:
        """Load a snapshot, re-routing entries onto the current shards.

        Entries are re-partitioned by the WL-hash tail of their cache
        key, so a snapshot taken under a different worker count still
        lands every entry on its owning shard.
        """
        buckets: Dict[int, list] = {}
        for entry in snapshot.get("entries", []):
            key = str(entry[0])
            wl_hash = key.rpartition(":")[2]
            try:
                shard = self.route(wl_hash)
            except (ValueError, ScaleError):
                continue  # malformed key; skip rather than refuse to start
            buckets.setdefault(shard, []).append(entry)
        loaded = 0
        for shard, entries in buckets.items():
            handle = self._workers[shard]
            if not handle.alive:
                continue
            result = handle.request("warmup", entries).result(
                timeout=self.scale_config.swap_timeout_s
            )
            loaded += int(result.get("loaded", 0))
        return loaded

    def metrics(self, timeout: float = 5.0) -> Dict[str, dict]:
        """Per-shard service metrics snapshots (dead workers noted)."""
        results: Dict[str, dict] = {}
        futures = [
            (handle.shard, handle.request("metrics"))
            for handle in self._workers
            if handle.alive
        ]
        for handle in self._workers:
            if not handle.alive:
                results[str(handle.shard)] = {"status": "dead"}
        for shard, future in futures:
            try:
                results[str(shard)] = future.result(timeout=timeout)
            except Exception as exc:  # noqa: BLE001 — metrics must not raise
                results[str(shard)] = {"status": f"unavailable: {exc}"}
        return results

    def ping_all(self, timeout: float = 5.0) -> List[dict]:
        """Liveness + served fingerprint per worker (healthz payload)."""
        statuses: List[dict] = []
        for handle in self._workers:
            if not handle.alive:
                statuses.append({"shard": handle.shard, "alive": False})
                continue
            try:
                payload = handle.request("ping").result(timeout=timeout)
                payload["alive"] = True
                statuses.append(payload)
            except Exception:  # noqa: BLE001 — a hung worker reads as dead
                statuses.append({"shard": handle.shard, "alive": False})
        return statuses

    @property
    def alive_workers(self) -> int:
        return sum(1 for handle in self._workers if handle.alive)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop every worker and release the slab."""
        if self._closed:
            return
        self._closed = True
        for handle in self._workers:
            handle.stop()
        if self.shared is not None:
            self.shared.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
