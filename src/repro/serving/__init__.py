"""Online serving: registry, cache, micro-batching, fallbacks, HTTP.

Turns trained predictors into a prediction service: load checkpoints
through :class:`ModelRegistry`, answer requests through
:class:`PredictionService` (WL-canonical cache -> micro-batched model
forward -> classical fallback chain), and expose it over HTTP with
:class:`ServingHTTPServer`. See DESIGN.md ("Serving subsystem") for the
architecture and guarantees.
"""

from repro.serving.batcher import BatchingError, MicroBatcher, PendingPrediction
from repro.serving.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
)
from repro.serving.cache import (
    CacheError,
    PredictionCache,
    cache_key,
    shard_index,
)
from repro.serving.fallbacks import (
    FALLBACK_ORDER,
    SOURCE_ANALYTIC,
    SOURCE_FIXED_ANGLE,
    SOURCE_MODEL,
    SOURCE_RANDOM,
    FallbackChain,
    FallbackResult,
)
from repro.serving.http import ServingHTTPServer, graph_from_payload
from repro.serving.metrics import ServingMetrics
from repro.serving.registry import (
    CHECKPOINT_FORMAT_VERSION,
    ModelRegistry,
    RegisteredModel,
    build_checkpoint_state,
    load_checkpoint,
    model_fingerprint,
    save_checkpoint,
    validate_checkpoint_state,
)
from repro.serving.scale import (
    AdmissionController,
    ScaleConfig,
    ScaleError,
    ScaleServingServer,
    SharedWeights,
    WorkerPool,
)
from repro.serving.service import (
    PredictionResult,
    PredictionService,
    ServingConfig,
)

__all__ = [
    "BatchingError",
    "MicroBatcher",
    "PendingPrediction",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "CircuitBreaker",
    "CacheError",
    "PredictionCache",
    "cache_key",
    "shard_index",
    "FALLBACK_ORDER",
    "SOURCE_ANALYTIC",
    "SOURCE_FIXED_ANGLE",
    "SOURCE_MODEL",
    "SOURCE_RANDOM",
    "FallbackChain",
    "FallbackResult",
    "ServingHTTPServer",
    "graph_from_payload",
    "ServingMetrics",
    "CHECKPOINT_FORMAT_VERSION",
    "ModelRegistry",
    "RegisteredModel",
    "build_checkpoint_state",
    "load_checkpoint",
    "model_fingerprint",
    "save_checkpoint",
    "validate_checkpoint_state",
    "AdmissionController",
    "ScaleConfig",
    "ScaleError",
    "ScaleServingServer",
    "SharedWeights",
    "WorkerPool",
    "PredictionResult",
    "PredictionService",
    "ServingConfig",
]
