"""Serving metrics: latency percentiles, source counts, throughput.

:class:`ServingMetrics` is the service's per-request sink. Latencies go
into a bounded ring buffer (newest ``window`` samples) so percentile
queries stay O(window) regardless of uptime; counters are cumulative.
The snapshot format is JSON-safe and is what both the ``/metrics`` HTTP
endpoint and the benchmark trajectory (``repro bench``) record.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from typing import Dict, Optional

import numpy as np

DEFAULT_WINDOW = 4096


class ServingMetrics:
    """Thread-safe request metrics for the prediction service."""

    def __init__(self, window: int = DEFAULT_WINDOW):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._lock = threading.Lock()
        self._latencies = deque(maxlen=int(window))
        self._sources: Counter = Counter()
        self._started_at = time.monotonic()
        self.requests = 0
        self.cache_hits = 0
        self.errors = 0
        self.model_failures = 0
        self.model_retries = 0
        self.timeouts = 0
        self.breaker_trips = 0
        self.breaker_rejections = 0
        self.dropped_responses = 0
        self.replay_logged = 0
        self.replay_drops = 0
        self.hot_swaps = 0
        self.promotion_version: Optional[int] = None

    def record_request(
        self, latency_s: float, source: str, cached: bool
    ) -> None:
        """Record one answered request."""
        with self._lock:
            self.requests += 1
            self._latencies.append(float(latency_s))
            self._sources[source] += 1
            if cached:
                self.cache_hits += 1

    def record_error(self) -> None:
        """Record one failed request."""
        with self._lock:
            self.errors += 1

    def record_model_failure(self, timed_out: bool = False) -> None:
        """One model-path attempt failed (rescued by the fallback chain)."""
        with self._lock:
            self.model_failures += 1
            if timed_out:
                self.timeouts += 1

    def record_model_retry(self) -> None:
        """One in-request retry of the model path."""
        with self._lock:
            self.model_retries += 1

    def record_breaker_trip(self) -> None:
        """The circuit breaker opened."""
        with self._lock:
            self.breaker_trips += 1

    def record_breaker_rejection(self) -> None:
        """A request skipped the model because the breaker was open."""
        with self._lock:
            self.breaker_rejections += 1

    def record_dropped_response(self) -> None:
        """A client disconnected before its response could be written."""
        with self._lock:
            self.dropped_responses += 1

    def record_replay_logged(self) -> None:
        """One request was durably appended to the replay log."""
        with self._lock:
            self.replay_logged += 1

    def record_replay_drop(self) -> None:
        """One replay-log append failed (serving carried on)."""
        with self._lock:
            self.replay_drops += 1

    def record_hot_swap(self) -> None:
        """The serving model was replaced without a restart."""
        with self._lock:
            self.hot_swaps += 1

    def set_promotion_version(self, version: int) -> None:
        """Note the flywheel version number now being served."""
        with self._lock:
            self.promotion_version = int(version)

    def latency_percentiles(self) -> Dict[str, Optional[float]]:
        """p50/p90/p99/max over the sliding window, in milliseconds.

        An empty window reports ``None`` (JSON ``null``) for every
        percentile — there is no latency to summarize, and a literal
        zero would read as "instant".

        Only a plain O(window) list copy happens under the lock; the
        numpy conversion and the percentile sort run on the copy, so a
        ``/metrics`` scrape never stalls request recorders behind an
        O(n log n) sort.
        """
        with self._lock:
            window = list(self._latencies)
        samples = np.asarray(window, dtype=np.float64)
        if samples.size == 0:
            return {
                "p50_ms": None, "p90_ms": None, "p99_ms": None, "max_ms": None,
            }
        p50, p90, p99 = np.percentile(samples, [50.0, 90.0, 99.0]) * 1e3
        return {
            "p50_ms": float(p50),
            "p90_ms": float(p90),
            "p99_ms": float(p99),
            "max_ms": float(samples.max() * 1e3),
        }

    def snapshot(
        self,
        cache_stats: Optional[dict] = None,
        batcher_stats: Optional[dict] = None,
        models: Optional[list] = None,
        breakers: Optional[dict] = None,
        replay_stats: Optional[dict] = None,
        admission: Optional[dict] = None,
        workers: Optional[dict] = None,
    ) -> dict:
        """JSON-safe aggregate, optionally embedding collaborator stats."""
        with self._lock:
            uptime = time.monotonic() - self._started_at
            requests = self.requests
            sources = dict(self._sources)
            cache_hits = self.cache_hits
            errors = self.errors
            fault_tolerance = {
                "model_failures": self.model_failures,
                "model_retries": self.model_retries,
                "timeouts": self.timeouts,
                "breaker_trips": self.breaker_trips,
                "breaker_rejections": self.breaker_rejections,
                "dropped_responses": self.dropped_responses,
            }
            flywheel = {
                "replay_logged": self.replay_logged,
                "replay_drops": self.replay_drops,
                "hot_swaps": self.hot_swaps,
                "promotion_version": self.promotion_version,
            }
        result = {
            "uptime_s": uptime,
            "requests": requests,
            "requests_per_second": requests / uptime if uptime > 0 else 0.0,
            "errors": errors,
            "cache_hits": cache_hits,
            "sources": sources,
            "fallback_requests": sum(
                count
                for source, count in sources.items()
                if source != "model"
            ),
            "fault_tolerance": fault_tolerance,
            "flywheel": flywheel,
            "latency": self.latency_percentiles(),
        }
        if replay_stats is not None:
            result["flywheel"]["replay_log"] = replay_stats
        if cache_stats is not None:
            result["cache"] = cache_stats
        if batcher_stats is not None:
            result["batcher"] = batcher_stats
        if models is not None:
            result["models"] = models
        if breakers is not None:
            result["breakers"] = breakers
        if admission is not None:
            result["admission"] = admission
        if workers is not None:
            result["workers"] = workers
        return result
