"""Checkpoint loading and the serving model registry.

``repro train`` writes a JSON checkpoint; this module owns that format:
:func:`build_checkpoint_state` produces it, :func:`load_checkpoint`
rebuilds a :class:`~repro.gnn.predictor.QAOAParameterPredictor` from it
with *validation at every step* — schema version, required keys,
architecture, hyperparameter types, and state-dict shapes — raising
:class:`~repro.exceptions.ModelError` with an actionable message instead
of surfacing a ``KeyError`` from deep inside model construction.

:class:`ModelRegistry` holds the loaded models for the prediction
service, keyed by name, with a stable content fingerprint per model so
cache entries never survive a checkpoint swap.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.exceptions import ModelError
from repro.gnn.predictor import ARCHITECTURES, QAOAParameterPredictor
from repro.utils.serialization import load_json, save_json

PathLike = Union[str, Path]

#: Version of the ``repro train`` checkpoint JSON layout. v2 added the
#: forward-affecting metadata (``feature_kind``, ``in_dim``,
#: ``head_hidden``, ``output_scaling``, ``readout_kind``, ``gat_heads``);
#: :func:`load_checkpoint` still reads v1, filling those with the
#: defaults every v1 checkpoint was trained under.
CHECKPOINT_FORMAT_VERSION = 2
SUPPORTED_CHECKPOINT_VERSIONS = (1, 2)

_REQUIRED_KEYS = (
    "format_version",
    "arch",
    "p",
    "hidden_dim",
    "num_layers",
    "dropout",
    "state",
)

#: v2 metadata keys and the v1-era defaults used when loading a v1 file.
_V2_DEFAULTS = {
    "feature_kind": "degree_onehot",
    "in_dim": 15,
    "head_hidden": 32,
    "output_scaling": "bounded",
    "readout_kind": "mean",
    "gat_heads": 1,
}


def build_checkpoint_state(
    model: QAOAParameterPredictor,
    final_loss: Optional[float] = None,
) -> dict:
    """The JSON-serializable checkpoint payload for ``model``."""
    state = {
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "arch": model.arch,
        "p": model.p,
        "in_dim": model.in_dim,
        "hidden_dim": model.encoder.out_dim,
        "num_layers": len(model.encoder.layers),
        "dropout": model.encoder.dropouts[0].rate,
        "head_hidden": model.head_lin1.out_features,
        "feature_kind": model.feature_kind,
        "output_scaling": model.output_scaling,
        "readout_kind": model.readout_kind,
        "state": {k: v.tolist() for k, v in model.state_dict().items()},
    }
    first = model.encoder.layers[0]
    if hasattr(first, "num_heads"):
        state["gat_heads"] = int(first.num_heads)
    if final_loss is not None:
        state["final_loss"] = float(final_loss)
    return state


def save_checkpoint(
    model: QAOAParameterPredictor,
    path: PathLike,
    final_loss: Optional[float] = None,
) -> None:
    """Write ``model`` as a versioned checkpoint (atomic JSON)."""
    save_json(build_checkpoint_state(model, final_loss), path)


def validate_checkpoint_state(state: object, origin: str = "checkpoint") -> dict:
    """Check a parsed checkpoint payload; return it typed, or raise.

    ``origin`` names the source (usually a path) in error messages.
    """
    if not isinstance(state, dict):
        raise ModelError(
            f"{origin}: expected a JSON object, got {type(state).__name__}"
        )
    missing = [key for key in _REQUIRED_KEYS if key not in state]
    if missing:
        hint = (
            " (no 'format_version': this looks like a pre-versioning "
            "checkpoint — retrain with the current `repro train`)"
            if "format_version" in missing
            else ""
        )
        raise ModelError(
            f"{origin}: missing checkpoint keys {missing}{hint}"
        )
    version = state["format_version"]
    if version not in SUPPORTED_CHECKPOINT_VERSIONS:
        raise ModelError(
            f"{origin}: checkpoint format_version {version!r} is not "
            f"supported (this build reads versions "
            f"{SUPPORTED_CHECKPOINT_VERSIONS}); re-export the model"
        )
    if state["arch"] not in ARCHITECTURES:
        raise ModelError(
            f"{origin}: unknown architecture {state['arch']!r}; "
            f"expected one of {ARCHITECTURES}"
        )
    if not isinstance(state["state"], dict):
        raise ModelError(f"{origin}: 'state' must be a parameter mapping")
    return state


def load_checkpoint(path: PathLike) -> QAOAParameterPredictor:
    """Rebuild a predictor from a ``repro train`` checkpoint file.

    Every failure mode — unreadable file, malformed JSON, schema or
    shape mismatch — surfaces as :class:`ModelError` naming the file.
    """
    path = Path(path)
    try:
        state = load_json(path)
    except FileNotFoundError:
        raise ModelError(f"checkpoint {path} does not exist") from None
    except json.JSONDecodeError as exc:
        raise ModelError(
            f"checkpoint {path} is not valid JSON ({exc}); the file may "
            "be truncated or corrupt"
        ) from exc
    state = validate_checkpoint_state(state, origin=str(path))
    # v1 checkpoints predate the metadata keys; every v1 model was
    # trained under these exact defaults, so filling them in reproduces
    # the original forward pass bit for bit.
    meta = {key: state.get(key, default) for key, default in _V2_DEFAULTS.items()}
    try:
        model = QAOAParameterPredictor(
            arch=state["arch"],
            p=int(state["p"]),
            in_dim=int(meta["in_dim"]),
            hidden_dim=int(state["hidden_dim"]),
            num_layers=int(state["num_layers"]),
            dropout=float(state["dropout"]),
            head_hidden=int(meta["head_hidden"]),
            output_scaling=str(meta["output_scaling"]),
            readout_kind=str(meta["readout_kind"]),
            gat_heads=int(meta["gat_heads"]),
            feature_kind=str(meta["feature_kind"]),
            rng=0,
        )
        model.load_state_dict(
            {k: np.asarray(v) for k, v in state["state"].items()}
        )
    except (TypeError, ValueError) as exc:
        raise ModelError(f"checkpoint {path}: bad field value ({exc})") from exc
    except ModelError as exc:
        raise ModelError(f"checkpoint {path}: {exc}") from exc
    model.eval()
    return model


def model_fingerprint(model: QAOAParameterPredictor) -> str:
    """Content hash of a model: every forward-affecting field + weights.

    Used as the model half of prediction-cache keys, so swapping in a
    retrained checkpoint invalidates every cached prediction. The
    header covers *all* metadata that changes the forward pass —
    ``feature_kind``, ``output_scaling``, ``readout_kind`` included —
    because two checkpoints with identical weights but different
    featurization produce different predictions, and a collision here
    would let a hot-swap serve stale cache rows.
    """
    digest = hashlib.sha256()
    digest.update(
        (
            f"{model.arch}|p={model.p}|in={model.in_dim}"
            f"|feat={model.feature_kind}"
            f"|scale={model.output_scaling}"
            f"|readout={model.readout_kind}"
        ).encode()
    )
    for name, value in sorted(model.state_dict().items()):
        digest.update(name.encode())
        digest.update(np.ascontiguousarray(value).tobytes())
    return digest.hexdigest()[:16]


class RegisteredModel:
    """A named model plus the metadata the service reports."""

    def __init__(
        self,
        name: str,
        model: QAOAParameterPredictor,
        source: str = "<memory>",
    ):
        self.name = name
        self.model = model
        self.source = source
        self.fingerprint = model_fingerprint(model)

    def describe(self) -> dict:
        """JSON-safe metadata (for /healthz and /metrics).

        ``max_nodes`` is the model's *true* serving capability (null =
        unbounded, for size-agnostic feature kinds) — not ``in_dim``,
        which is a feature-space width and only coincides with a size
        cap for the one-hot kinds.
        """
        return {
            "name": self.name,
            "arch": self.model.arch,
            "p": self.model.p,
            "feature_kind": self.model.feature_kind,
            "in_dim": self.model.in_dim,
            "max_nodes": self.model.max_nodes,
            "num_parameters": self.model.num_parameters(),
            "fingerprint": self.fingerprint,
            "source": self.source,
        }


class ModelRegistry:
    """Named collection of loaded predictors for the serving layer.

    The first model registered becomes the default; ``load`` validates
    checkpoints through :func:`load_checkpoint`.
    """

    def __init__(self):
        self._models: Dict[str, RegisteredModel] = {}
        self._default: Optional[str] = None

    def __len__(self) -> int:
        return len(self._models)

    def __contains__(self, name: str) -> bool:
        return name in self._models

    def names(self) -> List[str]:
        """Registered model names in insertion order."""
        return list(self._models)

    def register(
        self,
        name: str,
        model: QAOAParameterPredictor,
        source: str = "<memory>",
    ) -> RegisteredModel:
        """Add (or replace) a model under ``name``."""
        entry = RegisteredModel(name, model, source)
        self._models[name] = entry
        if self._default is None:
            self._default = name
        return entry

    def load(self, name: str, path: PathLike) -> RegisteredModel:
        """Load a checkpoint file and register it under ``name``."""
        model = load_checkpoint(path)
        return self.register(name, model, source=str(path))

    def get(self, name: Optional[str] = None) -> RegisteredModel:
        """Look up a model by name (default model when ``name`` is None)."""
        if name is None:
            if self._default is None:
                raise ModelError("registry is empty; no default model")
            name = self._default
        if name not in self._models:
            raise ModelError(
                f"no model named {name!r}; registered: {self.names() or 'none'}"
            )
        return self._models[name]

    def describe(self) -> List[dict]:
        """Metadata for every registered model."""
        return [entry.describe() for entry in self._models.values()]
