"""Graceful-degradation chain for prediction requests.

The service answers *every* request: when the GNN cannot be used — no
model loaded, graph larger than the feature cap, or a mid-flight model
failure — the request walks a deterministic chain of classical
initializers, and the response is tagged with the source that produced
it:

1. ``fixed_angle`` — Wurtz-Lykov fixed angles for regular graphs with a
   covered degree (:mod:`repro.qaoa.fixed_angles`).
2. ``analytic`` — at ``p = 1`` the closed-form optimum for the graph's
   rounded mean degree (:func:`repro.qaoa.analytic
   .p1_optimal_angles_regular`); at deeper ``p`` the annealing-inspired
   linear ramp.
3. ``random`` — uniform angles seeded from the graph's WL hash, so even
   the last resort is reproducible per isomorphism class.

The ``model`` source tag itself is applied by the service; this module
only covers the classical tail of the chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import FixedAngleLookupError
from repro.graphs.canonical import wl_canonical_hash
from repro.graphs.graph import Graph
from repro.qaoa.analytic import p1_optimal_angles_regular
from repro.qaoa.fixed_angles import FixedAngleTable, default_table
from repro.qaoa.initialization import (
    LinearRampInitialization,
    RandomInitialization,
)

SOURCE_MODEL = "model"
SOURCE_FIXED_ANGLE = "fixed_angle"
SOURCE_ANALYTIC = "analytic"
SOURCE_RANDOM = "random"

#: Chain order after the model itself.
FALLBACK_ORDER = (SOURCE_FIXED_ANGLE, SOURCE_ANALYTIC, SOURCE_RANDOM)


@dataclass(frozen=True)
class FallbackResult:
    """Angles plus the provenance tag of whichever rung produced them."""

    gammas: Tuple[float, ...]
    betas: Tuple[float, ...]
    source: str


class FallbackChain:
    """Ordered classical initializers behind the model.

    Parameters
    ----------
    p:
        Ansatz depth every result must have.
    table:
        Fixed-angle table (defaults to the process-wide shared one).
    """

    def __init__(self, p: int, table: Optional[FixedAngleTable] = None):
        if p < 1:
            raise ValueError(f"depth p must be >= 1, got {p}")
        self.p = int(p)
        self.table = table if table is not None else default_table()
        self._ramp = LinearRampInitialization()
        self._random = RandomInitialization()

    def resolve(self, graph: Graph) -> FallbackResult:
        """Walk the chain; always returns a depth-``p`` result."""
        result = self.try_fixed_angle(graph)
        if result is not None:
            return result
        result = self.try_analytic(graph)
        if result is not None:
            return result
        return self.random(graph)

    # ------------------------------------------------------------------
    # Individual rungs (public so tests can probe ordering)
    # ------------------------------------------------------------------
    def try_fixed_angle(self, graph: Graph) -> Optional[FallbackResult]:
        """Fixed-angle rung; ``None`` if irregular or degree uncovered."""
        degree = graph.regular_degree()
        if degree is None or not self.table.covers(degree, self.p):
            return None
        try:
            entry = self.table.lookup(degree, self.p)
        except FixedAngleLookupError:
            return None
        return FallbackResult(entry.gammas, entry.betas, SOURCE_FIXED_ANGLE)

    def try_analytic(self, graph: Graph) -> Optional[FallbackResult]:
        """Closed-form / linear-ramp rung; ``None`` for edgeless graphs."""
        if graph.num_edges == 0:
            return None
        if self.p == 1:
            mean_degree = 2.0 * graph.num_edges / graph.num_nodes
            effective = max(1, int(round(mean_degree)))
            gamma, beta = p1_optimal_angles_regular(effective)
            return FallbackResult((gamma,), (beta,), SOURCE_ANALYTIC)
        gammas, betas = self._ramp.initial_parameters(graph, self.p)
        return FallbackResult(
            tuple(float(g) for g in gammas),
            tuple(float(b) for b in betas),
            SOURCE_ANALYTIC,
        )

    def random(self, graph: Graph) -> FallbackResult:
        """Last resort: uniform angles, seeded by the graph's WL hash."""
        seed = int(wl_canonical_hash(graph)[:16], 16)
        rng = np.random.default_rng(seed)
        gammas, betas = self._random.initial_parameters(graph, self.p, rng)
        return FallbackResult(
            tuple(float(g) for g in gammas),
            tuple(float(b) for b in betas),
            SOURCE_RANDOM,
        )
