"""The online prediction service: warm-start angles for any graph.

:class:`PredictionService` is the composition root of the serving
subsystem. A request walks:

1. **Cache** — WL-canonical key under the model fingerprint; a hit
   returns the stored angles (isomorphic copies included).
2. **Model** — if a model is registered and the graph fits its feature
   cap, the request joins the micro-batch queue and is answered by a
   shared forward pass.
3. **Fallback chain** — fixed-angle table, analytic closed form, seeded
   random — when there is no usable model or the model path fails.

Every answer is tagged with its source, cached, and measured.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.exceptions import ReproError
from repro.gnn.predictor import QAOAParameterPredictor
from repro.graphs.graph import Graph
from repro.qaoa.fixed_angles import FixedAngleTable
from repro.runtime import ParallelExecutor
from repro.serving.batcher import MicroBatcher
from repro.serving.cache import PredictionCache, cache_key
from repro.serving.fallbacks import SOURCE_MODEL, FallbackChain
from repro.serving.metrics import ServingMetrics
from repro.serving.registry import ModelRegistry, RegisteredModel
from repro.utils.logging import get_logger

logger = get_logger(__name__)


@dataclass(frozen=True)
class ServingConfig:
    """Knobs for cache, batching, and fallback behavior."""

    cache_size: int = 4096
    cache_ttl_s: Optional[float] = None
    max_batch_size: int = 32
    max_wait_ms: float = 2.0
    workers: int = 1
    batching: bool = True
    request_timeout_s: float = 30.0
    default_p: int = 1  # fallback depth when no model is registered


@dataclass(frozen=True)
class PredictionResult:
    """One answered request."""

    gammas: Tuple[float, ...]
    betas: Tuple[float, ...]
    p: int
    source: str
    cached: bool
    latency_s: float
    cache_key: str = field(repr=False, default="")

    def to_dict(self) -> dict:
        """JSON-safe response payload."""
        return {
            "gammas": list(self.gammas),
            "betas": list(self.betas),
            "p": self.p,
            "source": self.source,
            "cached": self.cached,
            "latency_ms": self.latency_s * 1e3,
        }


class PredictionService:
    """Registry + cache + micro-batcher + fallbacks behind one call.

    Construct with either a bare ``model`` (registered as ``"default"``)
    or a pre-populated :class:`ModelRegistry`; with neither, every
    request is served by the fallback chain at ``config.default_p``.
    """

    def __init__(
        self,
        model: Optional[QAOAParameterPredictor] = None,
        registry: Optional[ModelRegistry] = None,
        config: Optional[ServingConfig] = None,
        fixed_angle_table: Optional[FixedAngleTable] = None,
    ):
        self.config = config if config is not None else ServingConfig()
        self.registry = registry if registry is not None else ModelRegistry()
        if model is not None:
            self.registry.register("default", model)
        self.cache = PredictionCache(
            max_size=self.config.cache_size, ttl_s=self.config.cache_ttl_s
        )
        self.metrics = ServingMetrics()
        self._executor = (
            ParallelExecutor(backend="thread", max_workers=self.config.workers)
            if self.config.workers > 1
            else None
        )
        self._batchers: Dict[str, MicroBatcher] = {}
        self._batcher_lock = threading.Lock()
        self._fallbacks: Dict[int, FallbackChain] = {}
        self._fixed_angle_table = fixed_angle_table
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain and stop every micro-batcher."""
        self._closed = True
        for batcher in self._batchers.values():
            batcher.close()
        self._batchers.clear()

    def __enter__(self) -> "PredictionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict(
        self, graph: Graph, model_name: Optional[str] = None
    ) -> PredictionResult:
        """Warm-start ``(gammas, betas)`` for ``graph``, from the best
        available source. Never raises for an unsupported graph — the
        fallback chain always answers."""
        start = time.perf_counter()
        try:
            result = self._predict_inner(graph, model_name, start)
        except Exception:
            self.metrics.record_error()
            raise
        self.metrics.record_request(result.latency_s, result.source, result.cached)
        return result

    def _predict_inner(
        self, graph: Graph, model_name: Optional[str], start: float
    ) -> PredictionResult:
        entry = self._entry(model_name)
        p = entry.model.p if entry is not None else self.config.default_p
        key = cache_key(
            graph,
            entry.fingerprint if entry is not None else f"fallback-p{p}",
        )
        hit = self.cache.get(key)
        if hit is not None:
            gammas, betas, source = hit
            return PredictionResult(
                gammas, betas, p, source, True,
                time.perf_counter() - start, key,
            )

        gammas = betas = None
        source = None
        if entry is not None and self._model_supports(entry, graph):
            try:
                row = self._model_row(entry, graph)
                gammas = tuple(float(g) for g in row[:p])
                betas = tuple(float(b) for b in row[p:])
                source = SOURCE_MODEL
            except ReproError as exc:
                logger.warning(
                    "model path failed for graph n=%d (%s); falling back",
                    graph.num_nodes,
                    exc,
                )
        if source is None:
            fallback = self._fallback_chain(p).resolve(graph)
            gammas, betas, source = (
                fallback.gammas, fallback.betas, fallback.source,
            )
        self.cache.put(key, (gammas, betas, source))
        return PredictionResult(
            gammas, betas, p, source, False,
            time.perf_counter() - start, key,
        )

    def predict_angles(
        self, graph: Graph, model_name: Optional[str] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Array convenience mirroring the predictor's interface."""
        result = self.predict(graph, model_name)
        return np.asarray(result.gammas), np.asarray(result.betas)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _entry(self, model_name: Optional[str]) -> Optional[RegisteredModel]:
        if model_name is None and len(self.registry) == 0:
            return None
        return self.registry.get(model_name)

    @staticmethod
    def _model_supports(entry: RegisteredModel, graph: Graph) -> bool:
        """Inside the model's feature cap (graphs beyond it fall back)."""
        return graph.num_nodes <= entry.model.in_dim

    def _model_row(self, entry: RegisteredModel, graph: Graph) -> np.ndarray:
        if not self.config.batching:
            return entry.model.predict([graph])[0]
        with self._batcher_lock:
            batcher = self._batchers.get(entry.name)
            if batcher is None:
                batcher = MicroBatcher(
                    entry.model.predict,
                    max_batch_size=self.config.max_batch_size,
                    max_wait_ms=self.config.max_wait_ms,
                    executor=self._executor,
                )
                self._batchers[entry.name] = batcher
        return batcher.predict(graph, timeout=self.config.request_timeout_s)

    def _fallback_chain(self, p: int) -> FallbackChain:
        chain = self._fallbacks.get(p)
        if chain is None:
            chain = FallbackChain(p, table=self._fixed_angle_table)
            self._fallbacks[p] = chain
        return chain

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> dict:
        """Aggregate service metrics (the /metrics payload)."""
        batcher_stats = {
            name: batcher.stats()
            for name, batcher in self._batchers.items()
        }
        return self.metrics.snapshot(
            cache_stats=self.cache.stats(),
            batcher_stats=batcher_stats or None,
            models=self.registry.describe(),
        )

    def describe(self) -> dict:
        """Health payload: models plus the live config."""
        return {
            "status": "ok",
            "models": self.registry.describe(),
            "config": {
                "cache_size": self.config.cache_size,
                "cache_ttl_s": self.config.cache_ttl_s,
                "max_batch_size": self.config.max_batch_size,
                "max_wait_ms": self.config.max_wait_ms,
                "workers": self.config.workers,
                "batching": self.config.batching,
                "default_p": self.config.default_p,
            },
        }
