"""The online prediction service: warm-start angles for any graph.

:class:`PredictionService` is the composition root of the serving
subsystem. A request walks:

1. **Cache** — WL-canonical key under the model fingerprint; a hit
   returns the stored angles (isomorphic copies included).
2. **Model** — if a model is registered and the graph fits its feature
   cap, the request joins the micro-batch queue and is answered by a
   shared forward pass.
3. **Fallback chain** — fixed-angle table, analytic closed form, seeded
   random — when there is no usable model or the model path fails.

Every answer is tagged with its source, cached, and measured.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.gnn.predictor import QAOAParameterPredictor
from repro.graphs.graph import Graph
from repro.qaoa.fixed_angles import FixedAngleTable
from repro.runtime import ParallelExecutor
from repro.serving.batcher import BatchingError, MicroBatcher
from repro.serving.breaker import CircuitBreaker
from repro.serving.cache import PredictionCache, cache_key
from repro.serving.fallbacks import SOURCE_MODEL, FallbackChain
from repro.serving.metrics import ServingMetrics
from repro.serving.registry import ModelRegistry, RegisteredModel
from repro.utils.logging import get_logger

logger = get_logger(__name__)


@dataclass(frozen=True)
class ServingConfig:
    """Knobs for cache, batching, fallback, and fault tolerance."""

    cache_size: int = 4096
    cache_ttl_s: Optional[float] = None
    max_batch_size: int = 32
    max_wait_ms: float = 2.0
    workers: int = 1
    batching: bool = True
    #: Deadline for the model path of one request (micro-batch queueing
    #: included); past it the request degrades to the fallback chain and
    #: the breaker records a failure.
    request_timeout_s: float = 30.0
    default_p: int = 1  # fallback depth when no model is registered
    #: In-request retries of the model path before falling back.
    model_retries: int = 0
    #: Consecutive model failures that trip the circuit breaker.
    breaker_threshold: int = 5
    #: Seconds a tripped breaker waits before a half-open probe.
    breaker_reset_s: float = 30.0


@dataclass(frozen=True)
class PredictionResult:
    """One answered request."""

    gammas: Tuple[float, ...]
    betas: Tuple[float, ...]
    p: int
    source: str
    cached: bool
    latency_s: float
    cache_key: str = field(repr=False, default="")

    def to_dict(self) -> dict:
        """JSON-safe response payload."""
        return {
            "gammas": list(self.gammas),
            "betas": list(self.betas),
            "p": self.p,
            "source": self.source,
            "cached": self.cached,
            "latency_ms": self.latency_s * 1e3,
        }


class PredictionService:
    """Registry + cache + micro-batcher + fallbacks behind one call.

    Construct with either a bare ``model`` (registered as ``"default"``)
    or a pre-populated :class:`ModelRegistry`; with neither, every
    request is served by the fallback chain at ``config.default_p``.
    """

    def __init__(
        self,
        model: Optional[QAOAParameterPredictor] = None,
        registry: Optional[ModelRegistry] = None,
        config: Optional[ServingConfig] = None,
        fixed_angle_table: Optional[FixedAngleTable] = None,
        clock: Optional[Callable[[], float]] = None,
        replay_log=None,
    ):
        self.config = config if config is not None else ServingConfig()
        self.registry = registry if registry is not None else ModelRegistry()
        if model is not None:
            self.registry.register("default", model)
        self.cache = PredictionCache(
            max_size=self.config.cache_size, ttl_s=self.config.cache_ttl_s
        )
        self.metrics = ServingMetrics()
        #: Optional flywheel sink (duck-typed to
        #: :class:`repro.flywheel.replay.ReplayLog`): every answered
        #: request is offered to ``replay_log.log_prediction``.
        self.replay_log = replay_log
        self._executor = (
            ParallelExecutor(backend="thread", max_workers=self.config.workers)
            if self.config.workers > 1
            else None
        )
        #: name -> (model fingerprint, batcher). The fingerprint pins a
        #: batcher to the exact model it wraps, so a hot-swapped entry
        #: can never be served by a stale queue.
        self._batchers: Dict[str, Tuple[str, MicroBatcher]] = {}
        self._batcher_lock = threading.Lock()
        self._fallbacks: Dict[int, FallbackChain] = {}
        self._fixed_angle_table = fixed_angle_table
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._breaker_lock = threading.Lock()
        self._breaker_clock = clock
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain and stop every micro-batcher; release the replay log."""
        self._closed = True
        with self._batcher_lock:
            batchers = list(self._batchers.values())
            self._batchers.clear()
        for _, batcher in batchers:
            batcher.close()
        if self.replay_log is not None:
            self.replay_log.close()

    def __enter__(self) -> "PredictionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict(
        self,
        graph: Graph,
        model_name: Optional[str] = None,
        wl_hash: Optional[str] = None,
    ) -> PredictionResult:
        """Warm-start ``(gammas, betas)`` for ``graph``, from the best
        available source.

        ``wl_hash`` is an optional precomputed 1-WL canonical hash; the
        scale front-end computes it once for shard routing and passes
        it down so the worker never re-hashes the graph.

        Never raises for a structurally valid graph: every model-path
        failure — unknown model name, forward-pass exception, micro-batch
        timeout, tripped circuit breaker — degrades to the classical
        fallback chain, which always answers. The only exceptions that
        escape are for graphs the *fallback chain itself* cannot serve
        (i.e. malformed input), and those are counted in
        ``metrics.errors``.
        """
        start = time.perf_counter()
        try:
            result = self._predict_inner(graph, model_name, start, wl_hash)
        except Exception:
            self.metrics.record_error()
            raise
        self.metrics.record_request(result.latency_s, result.source, result.cached)
        if self.replay_log is not None:
            try:
                outcome = self.replay_log.log_prediction(graph, result)
            except Exception as exc:  # noqa: BLE001 — log must not break serving
                logger.warning("replay logging failed (%s); dropped", exc)
                self.metrics.record_replay_drop()
            else:
                if outcome is True:
                    self.metrics.record_replay_logged()
                elif outcome is False:
                    self.metrics.record_replay_drop()
        return result

    def _predict_inner(
        self,
        graph: Graph,
        model_name: Optional[str],
        start: float,
        wl_hash: Optional[str] = None,
    ) -> PredictionResult:
        entry = None
        try:
            entry = self._entry(model_name)
        except Exception as exc:  # noqa: BLE001 — degrade, never raise
            logger.warning(
                "model lookup %r failed (%s); serving from the fallback "
                "chain",
                model_name,
                exc,
            )
        p = entry.model.p if entry is not None else self.config.default_p
        key = cache_key(
            graph,
            entry.fingerprint if entry is not None else f"fallback-p{p}",
            wl_hash=wl_hash,
        )
        hit = self.cache.get(key)
        if hit is not None:
            gammas, betas, source = hit
            return PredictionResult(
                gammas, betas, p, source, True,
                time.perf_counter() - start, key,
            )

        gammas = betas = None
        source = None
        if entry is not None and self._model_supports(entry, graph):
            row = self._guarded_model_row(entry, graph)
            if row is not None:
                gammas = tuple(float(g) for g in row[:p])
                betas = tuple(float(b) for b in row[p:])
                source = SOURCE_MODEL
        if source is None:
            fallback = self._fallback_chain(p).resolve(graph)
            gammas, betas, source = (
                fallback.gammas, fallback.betas, fallback.source,
            )
        self.cache.put(key, (gammas, betas, source))
        return PredictionResult(
            gammas, betas, p, source, False,
            time.perf_counter() - start, key,
        )

    def _guarded_model_row(
        self, entry: RegisteredModel, graph: Graph
    ) -> Optional[np.ndarray]:
        """The model forward, wrapped in breaker + retries + deadline.

        Returns ``None`` whenever the model cannot answer — breaker
        open, every attempt failed or timed out — so the caller walks
        the fallback chain instead of raising.
        """
        breaker = self._breaker(entry.name)
        if not breaker.allow():
            self.metrics.record_breaker_rejection()
            return None
        attempts = 1 + max(0, int(self.config.model_retries))
        for attempt in range(1, attempts + 1):
            try:
                row = self._model_row(entry, graph)
            except Exception as exc:  # noqa: BLE001 — degrade, never raise
                timed_out = isinstance(exc, BatchingError) and "timed out" in str(exc)
                self.metrics.record_model_failure(timed_out=timed_out)
                if breaker.record_failure():
                    self.metrics.record_breaker_trip()
                    logger.warning(
                        "circuit breaker for model %r tripped after %d "
                        "consecutive failures; serving fallbacks for %.1fs",
                        entry.name,
                        breaker.failure_threshold,
                        breaker.reset_timeout_s,
                    )
                    return None
                if attempt < attempts and breaker.allow():
                    self.metrics.record_model_retry()
                    continue
                logger.warning(
                    "model path failed for graph n=%d (%s); falling back",
                    graph.num_nodes,
                    exc,
                )
                return None
            breaker.record_success()
            return row
        return None

    def swap_model(
        self,
        model: QAOAParameterPredictor,
        name: str = "default",
        source: str = "<hot-swap>",
        version: Optional[int] = None,
    ) -> dict:
        """Replace the model serving under ``name`` without a restart.

        The swap is atomic at the registry level — every request sees
        either the old entry or the new one. Afterwards the old model
        cannot answer again: its micro-batcher is drained and closed,
        its circuit-breaker state is discarded, and every cache entry
        keyed under its fingerprint is invalidated (a swapped model must
        never serve a stale cached prediction).

        Returns a JSON-safe summary of what changed.
        """
        old = self.registry.get(name) if name in self.registry else None
        entry = self.registry.register(name, model, source=source)
        stale = None
        with self._batcher_lock:
            current = self._batchers.get(name)
            if current is not None and current[0] != entry.fingerprint:
                stale = self._batchers.pop(name)[1]
        if stale is not None:
            stale.close()
        with self._breaker_lock:
            self._breakers.pop(name, None)
        invalidated = 0
        if old is not None and old.fingerprint != entry.fingerprint:
            invalidated = self.cache.invalidate_model(old.fingerprint)
        self.metrics.record_hot_swap()
        if version is not None:
            self.metrics.set_promotion_version(version)
        logger.info(
            "hot-swapped model %r: %s -> %s (%d cache entries invalidated)",
            name,
            old.fingerprint if old is not None else "<none>",
            entry.fingerprint,
            invalidated,
        )
        return {
            "name": name,
            "old_fingerprint": old.fingerprint if old is not None else None,
            "new_fingerprint": entry.fingerprint,
            "invalidated_cache_entries": invalidated,
            "version": version,
        }

    def predict_angles(
        self, graph: Graph, model_name: Optional[str] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Array convenience mirroring the predictor's interface."""
        result = self.predict(graph, model_name)
        return np.asarray(result.gammas), np.asarray(result.betas)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _entry(self, model_name: Optional[str]) -> Optional[RegisteredModel]:
        if model_name is None and len(self.registry) == 0:
            return None
        return self.registry.get(model_name)

    @staticmethod
    def _model_supports(entry: RegisteredModel, graph: Graph) -> bool:
        """Inside the model's size capability (beyond it falls back).

        ``max_nodes`` is None for size-agnostic feature kinds — those
        models serve graphs of any size. Gating on ``in_dim`` here used
        to conflate feature width with graph size and sent every graph
        larger than the feature dimension to the fallback chain.
        """
        cap = entry.model.max_nodes
        return cap is None or graph.num_nodes <= cap

    def _model_row(self, entry: RegisteredModel, graph: Graph) -> np.ndarray:
        if not self.config.batching:
            return entry.model.predict([graph])[0]
        stale = None
        with self._batcher_lock:
            current = self._batchers.get(entry.name)
            if current is None or current[0] != entry.fingerprint:
                # First request for this (name, model) pair — or the
                # model under this name was hot-swapped and the cached
                # batcher still wraps the predecessor's forward pass.
                stale = current[1] if current is not None else None
                batcher = MicroBatcher(
                    entry.model.predict,
                    max_batch_size=self.config.max_batch_size,
                    max_wait_ms=self.config.max_wait_ms,
                    executor=self._executor,
                )
                self._batchers[entry.name] = (entry.fingerprint, batcher)
            else:
                batcher = current[1]
        if stale is not None:
            stale.close()
        return batcher.predict(graph, timeout=self.config.request_timeout_s)

    def _fallback_chain(self, p: int) -> FallbackChain:
        chain = self._fallbacks.get(p)
        if chain is None:
            chain = FallbackChain(p, table=self._fixed_angle_table)
            self._fallbacks[p] = chain
        return chain

    def _breaker(self, model_name: str) -> CircuitBreaker:
        with self._breaker_lock:
            breaker = self._breakers.get(model_name)
            if breaker is None:
                breaker = CircuitBreaker(
                    failure_threshold=self.config.breaker_threshold,
                    reset_timeout_s=self.config.breaker_reset_s,
                    clock=self._breaker_clock,
                )
                self._breakers[model_name] = breaker
            return breaker

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> dict:
        """Aggregate service metrics (the /metrics payload)."""
        with self._batcher_lock:
            batcher_stats = {
                name: batcher.stats()
                for name, (_, batcher) in self._batchers.items()
            }
        with self._breaker_lock:
            breaker_stats = {
                name: breaker.snapshot()
                for name, breaker in self._breakers.items()
            }
        return self.metrics.snapshot(
            cache_stats=self.cache.stats(),
            batcher_stats=batcher_stats or None,
            models=self.registry.describe(),
            breakers=breaker_stats or None,
            replay_stats=(
                self.replay_log.stats()
                if self.replay_log is not None
                else None
            ),
        )

    def describe(self) -> dict:
        """Health payload: models plus the live config."""
        return {
            "status": "ok",
            "models": self.registry.describe(),
            "config": {
                "cache_size": self.config.cache_size,
                "cache_ttl_s": self.config.cache_ttl_s,
                "max_batch_size": self.config.max_batch_size,
                "max_wait_ms": self.config.max_wait_ms,
                "workers": self.config.workers,
                "batching": self.config.batching,
                "default_p": self.config.default_p,
                "request_timeout_s": self.config.request_timeout_s,
                "model_retries": self.config.model_retries,
                "breaker_threshold": self.config.breaker_threshold,
                "breaker_reset_s": self.config.breaker_reset_s,
            },
        }
