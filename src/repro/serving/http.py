"""Stdlib HTTP front-end for the prediction service.

A deliberately dependency-free JSON API on ``http.server``:

- ``POST /predict`` — body ``{"num_nodes": n, "edges": [[u, v], ...],
  "weights": [...]?}`` or ``{"graph": "<text format>"}``; responds with
  ``{"gammas": [...], "betas": [...], "p": ..., "source": ...,
  "cached": ..., "latency_ms": ...}``.
- ``GET /metrics`` — the service metrics snapshot.
- ``GET /healthz`` — model + config health payload.

The server is a ``ThreadingHTTPServer``, so concurrent requests hit the
service from separate threads and get coalesced by the micro-batcher —
the HTTP layer adds no queuing of its own.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.exceptions import ReproError
from repro.graphs.graph import Graph
from repro.graphs.io import graph_from_text
from repro.serving.service import PredictionService
from repro.utils.logging import get_logger

logger = get_logger(__name__)

MAX_REQUEST_BYTES = 1 << 20  # 1 MiB body cap

#: Default request-size caps. Large enough for every supported
#: workload (size-agnostic models serve hundreds of nodes), small
#: enough that one hostile request cannot allocate a huge adjacency or
#: stall WL hashing on the hot path. Both are configurable on the
#: servers (``repro serve --max-request-nodes/--max-request-edges``).
DEFAULT_MAX_REQUEST_NODES = 1024
DEFAULT_MAX_REQUEST_EDGES = 32768


def graph_from_payload(
    payload: dict,
    max_nodes: int = DEFAULT_MAX_REQUEST_NODES,
    max_edges: int = DEFAULT_MAX_REQUEST_EDGES,
) -> Graph:
    """Build a graph from a /predict request body.

    Accepts either the edge-list form (``num_nodes`` + ``edges`` [+
    ``weights``]) or the text form (``graph``). Raises
    :class:`ReproError` subclasses on malformed structure, ``KeyError``/
    ``TypeError`` never escape to the handler. Graphs over the
    ``max_nodes`` / ``max_edges`` caps are rejected *before* any
    adjacency is materialized, so oversized requests cost nothing.
    """
    if not isinstance(payload, dict):
        raise ReproError("request body must be a JSON object")
    if "graph" in payload:
        if not isinstance(payload["graph"], str):
            raise ReproError("'graph' must be a text-format string")
        graph = graph_from_text(payload["graph"])
        _check_request_size(graph.num_nodes, graph.num_edges, max_nodes, max_edges)
        return graph
    if "num_nodes" not in payload or "edges" not in payload:
        raise ReproError(
            "request needs 'num_nodes' + 'edges' (or a 'graph' text block)"
        )
    try:
        num_nodes = int(payload["num_nodes"])
        raw_edges = payload["edges"]
        num_edges = len(raw_edges)
    except (TypeError, ValueError) as exc:
        raise ReproError(f"malformed graph payload: {exc}") from exc
    _check_request_size(num_nodes, num_edges, max_nodes, max_edges)
    try:
        edges = [(int(u), int(v)) for u, v in raw_edges]
    except (TypeError, ValueError) as exc:
        raise ReproError(f"malformed graph payload: {exc}") from exc
    weights = payload.get("weights")
    if weights is not None:
        try:
            weights = tuple(float(w) for w in weights)
        except (TypeError, ValueError) as exc:
            raise ReproError(f"malformed weights: {exc}") from exc
    return Graph.from_edges(
        num_nodes, edges, weights, name=str(payload.get("name", ""))
    )


def _check_request_size(
    num_nodes: int, num_edges: int, max_nodes: int, max_edges: int
) -> None:
    """Reject oversized request graphs with an actionable 400 message."""
    if max_nodes is not None and num_nodes > max_nodes:
        raise ReproError(
            f"request graph has {num_nodes} nodes; this server caps "
            f"requests at {max_nodes} nodes"
        )
    if max_edges is not None and num_edges > max_edges:
        raise ReproError(
            f"request graph has {num_edges} edges; this server caps "
            f"requests at {max_edges} edges"
        )


def _make_handler(
    service: PredictionService,
    max_request_nodes: int = DEFAULT_MAX_REQUEST_NODES,
    max_request_edges: int = DEFAULT_MAX_REQUEST_EDGES,
):
    class ServingHandler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        # ------------------------------------------------------------------
        def do_GET(self) -> None:  # noqa: N802 — http.server API
            if self.path == "/metrics":
                self._send(200, service.metrics_snapshot())
            elif self.path == "/healthz":
                self._send(200, service.describe())
            else:
                self._send(404, {"error": f"no route {self.path!r}"})

        def do_POST(self) -> None:  # noqa: N802 — http.server API
            if self.path != "/predict":
                self._send(404, {"error": f"no route {self.path!r}"})
                return
            length = int(self.headers.get("Content-Length", 0))
            if length <= 0 or length > MAX_REQUEST_BYTES:
                self._send(
                    400,
                    {"error": f"body length {length} outside (0, {MAX_REQUEST_BYTES}]"},
                )
                return
            try:
                body = self.rfile.read(length)
            except (BrokenPipeError, ConnectionResetError) as exc:
                service.metrics.record_dropped_response()
                self.close_connection = True
                logger.warning(
                    "client disconnected mid-request (%s); dropped",
                    exc.__class__.__name__,
                )
                return
            try:
                payload = json.loads(body)
            except json.JSONDecodeError as exc:
                self._send(400, {"error": f"invalid JSON: {exc}"})
                return
            try:
                graph = graph_from_payload(
                    payload,
                    max_nodes=max_request_nodes,
                    max_edges=max_request_edges,
                )
                model_name = payload.get("model") if isinstance(payload, dict) else None
                result = service.predict(graph, model_name=model_name)
            except ReproError as exc:
                self._send(400, {"error": str(exc)})
                return
            except Exception as exc:  # noqa: BLE001 — last-ditch 500
                logger.exception("unhandled serving error")
                self._send(500, {"error": f"internal error: {exc!r}"})
                return
            self._send(200, result.to_dict())

        # ------------------------------------------------------------------
        def _send(self, status: int, payload: dict) -> None:
            """Write one JSON response, tolerating client disconnects.

            A client that hangs up mid-response used to raise
            ``BrokenPipeError`` out of the handler and stack-trace the
            server thread; there is nobody left to answer, so log,
            count it, and drop the connection instead.
            """
            body = json.dumps(payload).encode()
            try:
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            except (BrokenPipeError, ConnectionResetError) as exc:
                service.metrics.record_dropped_response()
                self.close_connection = True
                logger.warning(
                    "client %s disconnected mid-response (%s); dropped",
                    getattr(self, "client_address", ("?",))[0],
                    exc.__class__.__name__,
                )

        def log_message(self, fmt: str, *args) -> None:  # noqa: A003
            logger.debug("http: " + fmt, *args)

    return ServingHandler


class ServingHTTPServer:
    """Lifecycle wrapper around ``ThreadingHTTPServer`` + service.

    ``port=0`` binds an ephemeral port (``server.port`` reports the real
    one), which is what the tests use.
    """

    def __init__(
        self,
        service: PredictionService,
        host: str = "127.0.0.1",
        port: int = 8000,
        max_request_nodes: int = DEFAULT_MAX_REQUEST_NODES,
        max_request_edges: int = DEFAULT_MAX_REQUEST_EDGES,
    ):
        self.service = service
        self._httpd = ThreadingHTTPServer(
            (host, port),
            _make_handler(service, max_request_nodes, max_request_edges),
        )
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """Bound ``(host, port)``."""
        return self._httpd.server_address[:2]

    @property
    def port(self) -> int:
        """Bound port (useful with ``port=0``)."""
        return self._httpd.server_address[1]

    def serve_forever(self) -> None:
        """Block serving requests (the ``repro serve`` foreground path)."""
        logger.info("serving on http://%s:%d", *self.address)
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            pass
        finally:
            self.close()

    def start_background(self) -> "ServingHTTPServer":
        """Serve from a daemon thread (tests and embedded use)."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serving-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop the listener and the service's batchers."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.service.close()

    def __enter__(self) -> "ServingHTTPServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
