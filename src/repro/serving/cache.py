"""Isomorphism-aware prediction cache with LRU + TTL eviction.

Keys combine a model fingerprint with the Weisfeiler-Lehman canonical
hash from :mod:`repro.graphs.canonical`, so any relabeled copy of an
already-served graph — and any graph 1-WL-indistinguishable from it,
which the GNN would map to the same output anyway — is a cache hit.

Eviction is twofold: least-recently-used beyond ``max_size`` entries,
and (optionally) a time-to-live per entry. The clock is injectable so
TTL behavior is testable without sleeping.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Optional

from repro.exceptions import ReproError
from repro.graphs.canonical import wl_canonical_hash
from repro.graphs.graph import Graph


class CacheError(ReproError):
    """Invalid prediction-cache configuration."""


def cache_key(graph: Graph, model_key: str = "") -> str:
    """The cache key for ``graph`` under the model named by ``model_key``."""
    return f"{model_key}:{wl_canonical_hash(graph)}"


class _Entry:
    __slots__ = ("value", "stored_at")

    def __init__(self, value, stored_at: float):
        self.value = value
        self.stored_at = stored_at


class PredictionCache:
    """Thread-safe LRU + TTL cache for prediction results.

    Parameters
    ----------
    max_size:
        Entry budget; the least-recently-used entry is evicted beyond it.
    ttl_s:
        Seconds an entry stays valid (``None`` disables expiry).
    clock:
        Monotonic time source, injectable for tests.
    """

    def __init__(
        self,
        max_size: int = 4096,
        ttl_s: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_size < 1:
            raise CacheError(f"max_size must be >= 1, got {max_size}")
        if ttl_s is not None and ttl_s <= 0:
            raise CacheError(f"ttl_s must be positive, got {ttl_s}")
        self.max_size = int(max_size)
        self.ttl_s = ttl_s
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions_lru = 0
        self.evictions_ttl = 0
        self.evictions_swap = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str):
        """The cached value for ``key``, or ``None`` (counts a miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and self._expired(entry):
                del self._entries[key]
                self.evictions_ttl += 1
                entry = None
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry.value

    def put(self, key: str, value) -> None:
        """Store ``value`` under ``key``, evicting LRU entries if needed."""
        with self._lock:
            self._entries[key] = _Entry(value, self._clock())
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)
                self.evictions_lru += 1

    def purge_expired(self) -> int:
        """Drop every expired entry; returns how many were removed."""
        if self.ttl_s is None:
            return 0
        with self._lock:
            expired = [
                key
                for key, entry in self._entries.items()
                if self._expired(entry)
            ]
            for key in expired:
                del self._entries[key]
            self.evictions_ttl += len(expired)
            return len(expired)

    def invalidate_model(self, model_key: str) -> int:
        """Drop every entry keyed under ``model_key``.

        Hot-swap hygiene: cache keys are ``<model_key>:<wl_hash>``, so
        purging the old model's fingerprint prefix guarantees a swapped
        model can never serve a prediction its predecessor computed.
        Returns how many entries were removed (also counted in
        ``evictions_swap``).
        """
        prefix = f"{model_key}:"
        with self._lock:
            stale = [key for key in self._entries if key.startswith(prefix)]
            for key in stale:
                del self._entries[key]
            self.evictions_swap += len(stale)
            return len(stale)

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def _expired(self, entry: _Entry) -> bool:
        return (
            self.ttl_s is not None
            and self._clock() - entry.stored_at > self.ttl_s
        )

    @property
    def hit_rate(self) -> float:
        """Hits over total lookups (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Counter snapshot for the metrics endpoint."""
        return {
            "size": len(self._entries),
            "max_size": self.max_size,
            "ttl_s": self.ttl_s,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions_lru": self.evictions_lru,
            "evictions_ttl": self.evictions_ttl,
            "evictions_swap": self.evictions_swap,
        }
