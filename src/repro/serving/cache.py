"""Isomorphism-aware prediction cache with LRU + TTL eviction.

Keys combine a model fingerprint with the Weisfeiler-Lehman canonical
hash from :mod:`repro.graphs.canonical`, so any relabeled copy of an
already-served graph — and any graph 1-WL-indistinguishable from it,
which the GNN would map to the same output anyway — is a cache hit.

Eviction is twofold: least-recently-used beyond ``max_size`` entries,
and (optionally) a time-to-live per entry. The clock is injectable so
TTL behavior is testable without sleeping.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Optional

from repro.exceptions import ReproError
from repro.graphs.canonical import wl_canonical_hash
from repro.graphs.graph import Graph


class CacheError(ReproError):
    """Invalid prediction-cache configuration."""


def cache_key(
    graph: Graph, model_key: str = "", wl_hash: Optional[str] = None
) -> str:
    """The cache key for ``graph`` under the model named by ``model_key``.

    ``wl_hash`` short-circuits the 1-WL computation when the caller
    already holds the canonical hash (the scale front-end computes it
    once for shard routing and forwards it to the worker).
    """
    if wl_hash is None:
        wl_hash = wl_canonical_hash(graph)
    return f"{model_key}:{wl_hash}"


def shard_index(wl_hash: str, num_shards: int) -> int:
    """Deterministic shard for a WL-canonical hash.

    The leading 8 hex digits of the hash are uniform, so taking them
    modulo ``num_shards`` partitions the WL-hash space: every hash maps
    to exactly one shard, and isomorphic graphs (same hash) always land
    on the same shard — which is what lets each worker own its cache
    partition outright, with no cross-worker coherence traffic.
    """
    if num_shards < 1:
        raise CacheError(f"num_shards must be >= 1, got {num_shards}")
    return int(wl_hash[:8], 16) % num_shards


class _Entry:
    __slots__ = ("value", "stored_at")

    def __init__(self, value, stored_at: float):
        self.value = value
        self.stored_at = stored_at


class PredictionCache:
    """Thread-safe LRU + TTL cache for prediction results.

    Parameters
    ----------
    max_size:
        Entry budget; the least-recently-used entry is evicted beyond it.
    ttl_s:
        Seconds an entry stays valid (``None`` disables expiry).
    clock:
        Monotonic time source, injectable for tests.
    """

    def __init__(
        self,
        max_size: int = 4096,
        ttl_s: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_size < 1:
            raise CacheError(f"max_size must be >= 1, got {max_size}")
        if ttl_s is not None and ttl_s <= 0:
            raise CacheError(f"ttl_s must be positive, got {ttl_s}")
        self.max_size = int(max_size)
        self.ttl_s = ttl_s
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions_lru = 0
        self.evictions_ttl = 0
        self.evictions_swap = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str):
        """The cached value for ``key``, or ``None`` (counts a miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and self._expired(entry):
                del self._entries[key]
                self.evictions_ttl += 1
                entry = None
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry.value

    def put(self, key: str, value) -> None:
        """Store ``value`` under ``key``, evicting LRU entries if needed."""
        with self._lock:
            self._entries[key] = _Entry(value, self._clock())
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)
                self.evictions_lru += 1

    def purge_expired(self) -> int:
        """Drop every expired entry; returns how many were removed."""
        if self.ttl_s is None:
            return 0
        with self._lock:
            expired = [
                key
                for key, entry in self._entries.items()
                if self._expired(entry)
            ]
            for key in expired:
                del self._entries[key]
            self.evictions_ttl += len(expired)
            return len(expired)

    def invalidate_model(self, model_key: str) -> int:
        """Drop every entry keyed under ``model_key``.

        Hot-swap hygiene: cache keys are ``<model_key>:<wl_hash>``, so
        purging the old model's fingerprint prefix guarantees a swapped
        model can never serve a prediction its predecessor computed.
        Returns how many entries were removed (also counted in
        ``evictions_swap``).
        """
        prefix = f"{model_key}:"
        with self._lock:
            stale = [key for key in self._entries if key.startswith(prefix)]
            for key in stale:
                del self._entries[key]
            self.evictions_swap += len(stale)
            return len(stale)

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------
    # Snapshot / warm-up
    # ------------------------------------------------------------------
    def export_entries(self) -> list:
        """JSON-safe ``[key, value, age_s]`` triples, LRU order first.

        ``age_s`` is seconds since the entry was stored (by this cache's
        clock), so an importer with a different clock epoch can
        reconstruct TTL state. Prediction values — ``(gammas, betas,
        source)`` tuples — round-trip losslessly through JSON because
        the floats are serialized by ``repr``.
        """
        with self._lock:
            now = self._clock()
            return [
                [key, self._as_jsonable(entry.value), now - entry.stored_at]
                for key, entry in self._entries.items()
            ]

    def import_entries(self, entries) -> int:
        """Warm up from :meth:`export_entries` output; returns how many
        entries were loaded (expired ones are skipped, LRU still bounds
        the total)."""
        imported = set()
        with self._lock:
            now = self._clock()
            for key, value, age_s in entries:
                age_s = float(age_s)
                if self.ttl_s is not None and age_s > self.ttl_s:
                    continue
                key = str(key)
                self._entries[key] = _Entry(
                    self._from_jsonable(value), now - age_s
                )
                self._entries.move_to_end(key)
                imported.add(key)
            while len(self._entries) > self.max_size:
                evicted, _ = self._entries.popitem(last=False)
                self.evictions_lru += 1
                imported.discard(evicted)
        return len(imported)

    @staticmethod
    def _as_jsonable(value):
        if (
            isinstance(value, tuple)
            and len(value) == 3
            and isinstance(value[2], str)
        ):
            gammas, betas, source = value
            return [list(gammas), list(betas), source]
        return value

    @staticmethod
    def _from_jsonable(value):
        if (
            isinstance(value, (list, tuple))
            and len(value) == 3
            and isinstance(value[2], str)
        ):
            gammas, betas, source = value
            return (
                tuple(float(g) for g in gammas),
                tuple(float(b) for b in betas),
                source,
            )
        return value

    def _expired(self, entry: _Entry) -> bool:
        return (
            self.ttl_s is not None
            and self._clock() - entry.stored_at > self.ttl_s
        )

    @property
    def hit_rate(self) -> float:
        """Hits over total lookups (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Counter snapshot for the metrics endpoint."""
        return {
            "size": len(self._entries),
            "max_size": self.max_size,
            "ttl_s": self.ttl_s,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions_lru": self.evictions_lru,
            "evictions_ttl": self.evictions_ttl,
            "evictions_swap": self.evictions_swap,
        }
