"""Micro-batching request queue for online inference.

Concurrent prediction requests are coalesced into a single
:class:`~repro.gnn.batching.GraphBatch` forward pass: the dispatcher
thread drains up to ``max_batch_size`` queued graphs, waiting at most
``max_wait_ms`` after the first arrival so a lone request is never
stalled behind an empty queue. Large drained batches can additionally be
split across a :class:`~repro.runtime.ParallelExecutor` (thread backend
— the workers share the model) to overlap forward passes.

Because model inference runs under batch-invariant kernels
(:func:`repro.nn.tensor.batch_invariant`), the response for a request is
bit-identical no matter which other requests happened to share its
batch, how the batch was chunked across workers, or whether it ran
unbatched — coalescing is purely a throughput decision.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.exceptions import ReproError
from repro.graphs.graph import Graph
from repro.runtime import ParallelExecutor


class BatchingError(ReproError):
    """Invalid micro-batcher configuration or a failed request."""


class PendingPrediction:
    """Handle for one submitted request; ``result()`` blocks until done."""

    def __init__(self, graph: Graph):
        self.graph = graph
        self._event = threading.Event()
        self._value: Optional[np.ndarray] = None
        self._error: Optional[BaseException] = None
        self.batch_size: Optional[int] = None

    def _resolve(self, value: np.ndarray, batch_size: int) -> None:
        self._value = value
        self.batch_size = batch_size
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def done(self) -> bool:
        """Whether a result (or error) is available."""
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> np.ndarray:
        """The prediction row ``(2p,)``; re-raises worker errors."""
        if not self._event.wait(timeout):
            raise BatchingError("timed out waiting for a batched prediction")
        if self._error is not None:
            raise self._error
        return self._value


class MicroBatcher:
    """Coalesce concurrent requests into shared forward passes.

    Parameters
    ----------
    forward_fn:
        ``graphs -> (len(graphs), 2p)`` array; typically
        ``model.predict``.
    max_batch_size:
        Most graphs dispatched in one forward pass.
    max_wait_ms:
        How long the dispatcher holds the first queued request open for
        companions before running a partial batch.
    executor:
        Optional :class:`ParallelExecutor` (thread backend) used to split
        a drained batch into concurrent chunk forwards.
    chunk_size:
        Graphs per executor chunk (default: even split across workers,
        minimum 4 per chunk).
    """

    def __init__(
        self,
        forward_fn: Callable[[Sequence[Graph]], np.ndarray],
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        executor: Optional[ParallelExecutor] = None,
        chunk_size: Optional[int] = None,
    ):
        if max_batch_size < 1:
            raise BatchingError("max_batch_size must be >= 1")
        if max_wait_ms < 0:
            raise BatchingError("max_wait_ms must be >= 0")
        if chunk_size is not None and chunk_size < 1:
            raise BatchingError("chunk_size must be >= 1")
        self.forward_fn = forward_fn
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_ms) / 1000.0
        self.executor = executor
        self.chunk_size = chunk_size
        self._lock = threading.Lock()
        self._has_work = threading.Condition(self._lock)
        self._queue: List[PendingPrediction] = []
        self._closed = False
        self.num_requests = 0
        self.num_batches = 0
        self.total_batched = 0
        self.max_occupancy = 0
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="repro-microbatcher", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def submit(self, graph: Graph) -> PendingPrediction:
        """Queue one graph; returns a handle resolved by the dispatcher."""
        pending = PendingPrediction(graph)
        with self._has_work:
            if self._closed:
                raise BatchingError("micro-batcher is closed")
            self._queue.append(pending)
            self.num_requests += 1
            self._has_work.notify_all()
        return pending

    def predict(
        self, graph: Graph, timeout: Optional[float] = 30.0
    ) -> np.ndarray:
        """Blocking convenience: submit and wait for the row."""
        return self.submit(graph).result(timeout)

    def close(self, timeout: float = 10.0) -> None:
        """Stop accepting work, drain the queue, and join the thread."""
        with self._has_work:
            if self._closed:
                return
            self._closed = True
            self._has_work.notify_all()
        self._thread.join(timeout)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Dispatcher side
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            self._run_batch(batch)

    def _next_batch(self) -> Optional[List[PendingPrediction]]:
        with self._has_work:
            while not self._queue and not self._closed:
                self._has_work.wait()
            if not self._queue:
                return None  # closed and drained
            # Hold the first request open briefly so companions can join.
            deadline = time.monotonic() + self.max_wait_s
            while (
                len(self._queue) < self.max_batch_size and not self._closed
            ):
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._has_work.wait(remaining):
                    break
            batch = self._queue[: self.max_batch_size]
            del self._queue[: self.max_batch_size]
            self.num_batches += 1
            self.total_batched += len(batch)
            self.max_occupancy = max(self.max_occupancy, len(batch))
            return batch

    def _run_batch(self, batch: List[PendingPrediction]) -> None:
        graphs = [pending.graph for pending in batch]
        try:
            outputs = self._forward(graphs)
            outputs = np.asarray(outputs)
            if outputs.shape[0] != len(graphs):
                raise BatchingError(
                    f"forward returned {outputs.shape[0]} rows for "
                    f"{len(graphs)} graphs"
                )
        except BaseException as exc:  # noqa: BLE001 — fanned out per request
            for pending in batch:
                pending._fail(exc)
            return
        for pending, row in zip(batch, outputs):
            pending._resolve(row, len(batch))

    def _forward(self, graphs: List[Graph]) -> np.ndarray:
        if self.executor is None or len(graphs) <= 1:
            return self.forward_fn(graphs)
        size = self.chunk_size
        if size is None:
            size = max(4, -(-len(graphs) // self.executor.max_workers))
        if size >= len(graphs):
            return self.forward_fn(graphs)
        chunks = [
            graphs[i : i + size] for i in range(0, len(graphs), size)
        ]
        parts = self.executor.map(self.forward_fn, chunks)
        return np.concatenate(parts, axis=0)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Occupancy counters for the metrics endpoint."""
        with self._lock:
            return {
                "requests": self.num_requests,
                "batches": self.num_batches,
                "mean_occupancy": (
                    self.total_batched / self.num_batches
                    if self.num_batches
                    else 0.0
                ),
                "max_occupancy": self.max_occupancy,
                "max_batch_size": self.max_batch_size,
                "max_wait_ms": self.max_wait_s * 1000.0,
                "queued": len(self._queue),
            }
