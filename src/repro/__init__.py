"""repro — Graph learning for QAOA parameter prediction.

A full reproduction of "Graph Learning for Parameter Prediction of
Quantum Approximate Optimization Algorithm" (DAC 2024), built from
scratch on numpy: a statevector QAOA simulator, a reverse-mode autograd
neural-network framework, four GNN architectures (GCN, GAT, GIN,
GraphSAGE), the dataset generation / pruning pipeline, and the
warm-start evaluation harness.

Subpackages
-----------
``repro.graphs``
    Graph container, random generators, text-file IO, node features.
``repro.maxcut``
    Max-Cut problems: brute force, Goemans-Williamson, heuristics.
``repro.quantum``
    Gate library, circuit IR, dense statevector simulator.
``repro.qaoa``
    Fast QAOA simulator with exact gradients, optimizers, fixed angles,
    initialization strategies, end-to-end runner.
``repro.nn``
    Autograd tensors, layers, losses, optimizers, LR schedulers.
``repro.gnn``
    Message-passing layers and the QAOA parameter predictor.
``repro.data``
    Dataset generation, labeling, pruning, splits, statistics.
``repro.pipeline``
    Model training and warm-start evaluation.
``repro.runtime``
    Parallel execution runtime (serial/thread/process backends) with
    deterministic per-task seeding and throughput reporting.
``repro.analysis``
    Table/figure builders for the paper's evaluation artifacts.
"""

__version__ = "1.0.0"
