"""Breakdowns of warm-start results by instance shape.

Table 1 reports one mean per architecture; these helpers slice the same
per-instance comparisons by graph size and by degree, revealing *where*
the warm start earns its improvement (the paper's Figures 3/4 ask the
analogous question about label quality).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np


def improvement_by_size(result) -> List[dict]:
    """Mean improvement per graph size from an EvaluationResult."""
    return _bucketed(result, key=lambda c: c.num_nodes, label="num_nodes")


def improvement_by_degree(result) -> List[dict]:
    """Mean improvement per degree from an EvaluationResult."""
    return _bucketed(result, key=lambda c: c.degree, label="degree")


def _bucketed(result, key, label: str) -> List[dict]:
    buckets: Dict[int, List[float]] = {}
    random_ars: Dict[int, List[float]] = {}
    warm_ars: Dict[int, List[float]] = {}
    for comparison in result.comparisons:
        bucket = int(key(comparison))
        buckets.setdefault(bucket, []).append(comparison.improvement)
        random_ars.setdefault(bucket, []).append(comparison.random_ratio)
        warm_ars.setdefault(bucket, []).append(comparison.strategy_ratio)
    rows = []
    for bucket in sorted(buckets):
        values = np.asarray(buckets[bucket])
        rows.append(
            {
                label: bucket,
                "count": len(values),
                "mean_improvement_pp": float(values.mean()),
                "std_improvement_pp": float(values.std()),
                "mean_random_ar": float(np.mean(random_ars[bucket])),
                "mean_warm_ar": float(np.mean(warm_ars[bucket])),
            }
        )
    return rows


def hardest_instances(result, count: int = 5) -> List[dict]:
    """The instances where the warm start did worst (for error analysis)."""
    ranked = sorted(result.comparisons, key=lambda c: c.improvement)
    return [
        {
            "graph": c.graph_name,
            "num_nodes": c.num_nodes,
            "degree": c.degree,
            "improvement_pp": c.improvement,
            "random_ar": c.random_ratio,
            "warm_ar": c.strategy_ratio,
        }
        for c in ranked[:count]
    ]
