"""Figure-series builders and terminal rendering.

Every figure in the paper is regenerated as a data series (suitable for
CSV export / plotting) plus an ASCII rendering for terminal inspection:

- Figure 2 (a, b): histograms — :func:`histogram_series`, ascii bars.
- Figures 3, 4: AR interval-by-bucket — :func:`interval_series`.
- Figure 5: per-test-graph AR lines for random vs GNN —
  :func:`comparison_series`, :func:`render_comparison`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Sequence, Union

import numpy as np

from repro.data.stats import IntervalSummary

# EvaluationResult is consumed duck-typed (see tables.py note).

PathLike = Union[str, Path]


def histogram_series(frequency: Dict[int, int]) -> List[dict]:
    """Figure 2 series: one row per bucket ``{key, count}``."""
    return [{"key": key, "count": count} for key, count in sorted(frequency.items())]


def render_histogram(
    frequency: Dict[int, int], title: str, width: int = 50
) -> str:
    """ASCII bar chart of a histogram."""
    if not frequency:
        return f"{title}\n(empty)"
    peak = max(frequency.values())
    lines = [title]
    for key, count in sorted(frequency.items()):
        bar = "#" * max(1, int(round(width * count / peak))) if count else ""
        lines.append(f"{key:>4} | {bar} {count}")
    return "\n".join(lines)


def interval_series(summaries: Sequence[IntervalSummary]) -> List[dict]:
    """Figures 3/4 series: one row per bucket with the AR spread."""
    return [
        {
            "key": s.key,
            "count": s.count,
            "min": s.minimum,
            "q25": s.q25,
            "median": s.median,
            "q75": s.q75,
            "max": s.maximum,
            "mean": s.mean,
        }
        for s in summaries
    ]


def render_intervals(
    summaries: Sequence[IntervalSummary], title: str, width: int = 50
) -> str:
    """ASCII box-style rendering of AR intervals per bucket (Figs 3/4)."""
    lines = [title, f"{'key':>4} {'n':>5}  AR interval [0, 1]"]
    for s in summaries:
        lo = int(round(s.minimum * width))
        hi = int(round(s.maximum * width))
        med = int(round(s.median * width))
        row = [" "] * (width + 1)
        for i in range(lo, hi + 1):
            row[i] = "-"
        row[lo] = "|"
        row[min(hi, width)] = "|"
        row[min(med, width)] = "*"
        lines.append(f"{s.key:>4} {s.count:>5}  {''.join(row)}")
    lines.append(" " * 12 + "0" + " " * (width - 2) + "1")
    return "\n".join(lines)


def comparison_series(result: "EvaluationResult") -> List[dict]:
    """Figure 5 series: per-test-graph random vs strategy final AR."""
    return [
        {
            "index": index,
            "graph": c.graph_name,
            "num_nodes": c.num_nodes,
            "degree": c.degree,
            "random_ar": c.random_ratio,
            "strategy_ar": c.strategy_ratio,
            "improvement_pp": c.improvement,
        }
        for index, c in enumerate(result.comparisons)
    ]


def render_comparison(result: "EvaluationResult", width: int = 60) -> str:
    """ASCII Figure-5 panel: one line per test graph, both ARs marked.

    ``r`` marks the random-initialization AR, ``G`` the strategy AR; when
    they collide ``=`` is shown.
    """
    lines = [
        f"Figure 5 panel — {result.strategy_name} "
        f"(mean improvement {result.mean_improvement:+.2f} pp)",
        f"{'graph':>6}  AR in [0, 1]   (r = random, G = {result.strategy_name})",
    ]
    for index, c in enumerate(result.comparisons):
        row = [" "] * (width + 1)
        r_pos = int(round(np.clip(c.random_ratio, 0, 1) * width))
        g_pos = int(round(np.clip(c.strategy_ratio, 0, 1) * width))
        if r_pos == g_pos:
            row[r_pos] = "="
        else:
            row[r_pos] = "r"
            row[g_pos] = "G"
        lines.append(f"{index:>6}  {''.join(row)}")
    return "\n".join(lines)


def export_csv(rows: Sequence[dict], path: PathLike) -> None:
    """Write dict rows to a CSV file (stable column order)."""
    rows = list(rows)
    if not rows:
        raise ValueError("no rows to export")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    columns = list(rows[0].keys())
    with path.open("w") as handle:
        handle.write(",".join(columns) + "\n")
        for row in rows:
            handle.write(
                ",".join(str(row.get(col, "")) for col in columns) + "\n"
            )
