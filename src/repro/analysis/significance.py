"""Statistical significance of warm-start improvements.

Table 1 reports mean ± std, but with per-instance spread ~3x the mean
(paper: 3.66 ± 9.97) the natural question is whether the improvement is
statistically distinguishable from zero. The comparisons are *paired*
(same test graph, two initializations), so the right tools are the
paired t-test and the Wilcoxon signed-rank test, plus a sign test for a
distribution-free check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class SignificanceReport:
    """Paired-test results for one strategy's improvements.

    Attributes
    ----------
    mean, std:
        Improvement statistics in percentage points.
    t_statistic, t_pvalue:
        Paired t-test against zero mean (two-sided).
    wilcoxon_pvalue:
        Wilcoxon signed-rank test p-value (two-sided); NaN for
        degenerate inputs (e.g. all-zero differences).
    sign_test_pvalue:
        Binomial sign-test p-value (two-sided).
    n:
        Number of paired comparisons.
    """

    mean: float
    std: float
    t_statistic: float
    t_pvalue: float
    wilcoxon_pvalue: float
    sign_test_pvalue: float
    n: int

    def significant(self, alpha: float = 0.05) -> bool:
        """True when the paired t-test rejects zero mean at ``alpha``."""
        return bool(self.t_pvalue < alpha)


def paired_significance(improvements) -> SignificanceReport:
    """Run all three paired tests on per-instance improvements (pp)."""
    values = np.asarray(list(improvements), dtype=np.float64)
    if values.size < 2:
        raise ValueError("need at least two paired comparisons")
    t_statistic, t_pvalue = stats.ttest_1samp(values, 0.0)
    nonzero = values[values != 0.0]
    if nonzero.size >= 1 and not np.allclose(nonzero, nonzero[0] * 0):
        try:
            _, wilcoxon_pvalue = stats.wilcoxon(nonzero)
        except ValueError:
            wilcoxon_pvalue = float("nan")
    else:
        wilcoxon_pvalue = float("nan")
    wins = int((values > 0).sum())
    losses = int((values < 0).sum())
    if wins + losses > 0:
        sign_pvalue = float(
            stats.binomtest(wins, wins + losses, 0.5).pvalue
        )
    else:
        sign_pvalue = float("nan")
    return SignificanceReport(
        mean=float(values.mean()),
        std=float(values.std()),
        t_statistic=float(t_statistic),
        t_pvalue=float(t_pvalue),
        wilcoxon_pvalue=float(wilcoxon_pvalue),
        sign_test_pvalue=sign_pvalue,
        n=int(values.size),
    )


def significance_table(results: dict) -> List[dict]:
    """Per-architecture significance rows from EvaluationResult dict."""
    rows = []
    for name, result in results.items():
        report = paired_significance(result.improvements)
        rows.append(
            {
                "strategy": name,
                "mean_pp": report.mean,
                "t_pvalue": report.t_pvalue,
                "wilcoxon_pvalue": report.wilcoxon_pvalue,
                "sign_pvalue": report.sign_test_pvalue,
                "significant_5pct": report.significant(0.05),
                "n": report.n,
            }
        )
    return rows
