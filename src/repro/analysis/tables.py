"""Table formatting — Table 1 and general result tables."""

from __future__ import annotations

from typing import Dict, Sequence

# EvaluationResult instances are consumed duck-typed here; importing the
# class would create a repro.analysis <-> repro.pipeline import cycle.

#: The paper's Table 1, for side-by-side comparison in EXPERIMENTS.md.
PAPER_TABLE1 = {
    "gat": (3.28, 9.99),
    "gcn": (3.65, 10.17),
    "gin": (3.66, 9.97),
    "sage": (2.86, 10.01),
}


def format_table1(results: Dict[str, "EvaluationResult"]) -> str:
    """Render Table 1 (average improvement +/- std per architecture).

    Includes the paper's reported numbers when the architecture key
    matches, so reproduction drift is visible at a glance.
    """
    header = (
        f"{'Method':<10} {'Improvement':>14} {'Paper':>14} "
        f"{'WinRate':>8} {'N':>5}"
    )
    lines = [header, "-" * len(header)]
    for name, result in results.items():
        paper = PAPER_TABLE1.get(name.lower())
        paper_text = f"{paper[0]:.2f} ± {paper[1]:.2f}" if paper else "—"
        lines.append(
            f"{name:<10} "
            f"{result.mean_improvement:>7.2f} ± {result.std_improvement:<5.2f}"
            f"{paper_text:>14} "
            f"{result.win_rate():>8.2f} "
            f"{len(result.comparisons):>5d}"
        )
    return "\n".join(lines)


def format_rows(
    rows: Sequence[dict], columns: Sequence[str], title: str = ""
) -> str:
    """Generic fixed-width table from dict rows."""
    widths = {
        col: max(len(col), *(len(_cell(row.get(col))) for row in rows))
        for col in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            "  ".join(_cell(row.get(col)).ljust(widths[col]) for col in columns)
        )
    return "\n".join(lines)


def _cell(value) -> str:
    if value is None:
        return "—"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
