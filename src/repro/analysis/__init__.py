"""Analysis: table formatting and figure-series builders."""

from repro.analysis.tables import PAPER_TABLE1, format_rows, format_table1
from repro.analysis.breakdown import (
    hardest_instances,
    improvement_by_degree,
    improvement_by_size,
)
from repro.analysis.significance import (
    SignificanceReport,
    paired_significance,
    significance_table,
)
from repro.analysis.figures import (
    comparison_series,
    export_csv,
    histogram_series,
    interval_series,
    render_comparison,
    render_histogram,
    render_intervals,
)

__all__ = [
    "PAPER_TABLE1",
    "hardest_instances",
    "improvement_by_degree",
    "improvement_by_size",
    "SignificanceReport",
    "paired_significance",
    "significance_table",
    "format_rows",
    "format_table1",
    "comparison_series",
    "export_csv",
    "histogram_series",
    "interval_series",
    "render_comparison",
    "render_histogram",
    "render_intervals",
]
