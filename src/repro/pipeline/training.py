"""Model training loop.

Matches the paper's "Implementation Details": Adam, MSE regression onto
the labeled ``(gamma, beta)`` vectors, ReduceLROnPlateau monitoring the
training loss (mode ``min``, divide-by-5 factor, patience 5, min lr
1e-5), 100 epochs.

Performance structure (see DESIGN "Training performance"):

- By default the trainer compiles the dataset once
  (:class:`~repro.data.compiled.CompiledDataset`) and assembles every
  shuffled mini-batch by index slicing — bit-identical to rebuilding
  ``GraphBatch.from_graphs`` per step, just without the per-step cost.
  ``TrainingConfig(compile_batches=False)`` restores the seed loop.
- ``TrainingConfig(csr_kernels=True)`` additionally attaches CSR
  segment plans to every batch, switching message passing onto the
  ``reduceat`` kernels. This changes float summation order (last-ulp
  differences; equivalence-tested, not bitwise), which is why it is an
  explicit opt-in rather than the default.
- ``TrainingConfig(profile=True)`` (or ``repro train --profile``)
  records per-phase wall time — batch assembly / forward / backward /
  optimizer — into ``TrainingHistory.profile``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, List, Optional

import numpy as np

from repro.data.compiled import CompiledDataset
from repro.data.dataset import QAOADataset
from repro.exceptions import DatasetError, ModelError
from repro.gnn.batching import GraphBatch
from repro.gnn.predictor import QAOAParameterPredictor
from repro.nn.losses import mse_loss
from repro.nn.optim import Adam, GradClipper
from repro.nn.schedulers import ReduceLROnPlateau
from repro.nn.tensor import Tensor, eager as nn_eager
from repro.profiling import NULL_PROFILER, TrainingProfiler
from repro.utils.logging import get_logger
from repro.utils.rng import RngLike, ensure_rng

logger = get_logger(__name__)


@dataclass
class TrainingConfig:
    """Hyperparameters of the paper's training setup.

    The last four fields are performance knobs, not hyperparameters:
    ``compile_batches`` (default on, bit-identical) caches per-graph
    arrays and assembles mini-batches by slicing; ``csr_kernels``
    (default off, last-ulp numerics) switches the segment reductions
    onto the CSR ``reduceat`` path; ``profile`` records per-phase wall
    times into the returned history; ``engine`` selects the tensor
    execution engine — ``"lazy"`` (default, bit-identical: records op
    graphs and realizes fused kernels at each ``backward()``) or
    ``"eager"`` (the op-at-a-time oracle path). With the lazy engine
    the "forward" profiling phase only records the graph; the compute
    it saved shows up under "backward", where the whole step realizes.
    """

    epochs: int = 100
    batch_size: int = 32
    learning_rate: float = 1e-3
    grad_clip: float = 5.0
    scheduler_factor: float = 5.0  # paper phrasing; normalized to 1/5
    scheduler_patience: int = 5
    scheduler_min_lr: float = 1e-5
    weight_decay: float = 0.0
    seed: Optional[int] = None
    compile_batches: bool = True
    csr_kernels: bool = False
    profile: bool = False
    engine: str = "lazy"


@dataclass
class TrainingHistory:
    """Per-epoch records produced by :class:`Trainer.fit`."""

    losses: List[float] = field(default_factory=list)
    learning_rates: List[float] = field(default_factory=list)
    validation_losses: List[float] = field(default_factory=list)
    epoch_times: List[float] = field(default_factory=list)
    profile: Optional[dict] = None

    @property
    def final_loss(self) -> float:
        """Loss of the last epoch."""
        return self.losses[-1] if self.losses else float("nan")

    @property
    def epochs_per_second(self) -> float:
        """Mean training throughput over recorded epochs."""
        total = sum(self.epoch_times)
        return len(self.epoch_times) / total if total > 0 else 0.0


class Trainer:
    """Trains a :class:`QAOAParameterPredictor` on a labeled dataset."""

    def __init__(
        self,
        model: QAOAParameterPredictor,
        config: Optional[TrainingConfig] = None,
        rng: RngLike = None,
    ):
        self.model = model
        self.config = config if config is not None else TrainingConfig()
        self._rng = ensure_rng(
            rng if rng is not None else self.config.seed
        )
        self.optimizer = Adam(
            model.parameters(),
            learning_rate=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        self.scheduler = ReduceLROnPlateau(
            self.optimizer,
            mode="min",
            factor=self.config.scheduler_factor,
            patience=self.config.scheduler_patience,
            min_lr=self.config.scheduler_min_lr,
        )
        self._clipper = (
            GradClipper(model.parameters(), self.config.grad_clip)
            if self.config.grad_clip > 0
            else None
        )
        self.profiler = (
            TrainingProfiler() if self.config.profile else NULL_PROFILER
        )

    def fit(
        self,
        dataset: QAOADataset,
        validation: Optional[QAOADataset] = None,
        callback: Optional[Callable[[int, float], None]] = None,
        compiled: Optional[CompiledDataset] = None,
    ) -> TrainingHistory:
        """Run the full training loop; returns the loss history.

        ``config.engine`` picks the tensor engine for the whole loop;
        the two produce bitwise-identical weights and loss traces.
        ``compiled`` supplies a prebuilt :class:`CompiledDataset` for
        ``dataset`` (must match its records and the config's
        ``csr_kernels`` flag) so repeated fits over one dataset — the
        benchmark arms, cross-validation folds — share one compilation
        and its assembled-batch memo instead of recompiling per fit.
        """
        engine = self.config.engine
        if engine == "eager":
            with nn_eager():
                return self._fit(dataset, validation, callback, compiled)
        if engine != "lazy":
            raise ModelError(f"unknown tensor engine: {engine!r}")
        return self._fit(dataset, validation, callback, compiled)

    def _fit(
        self,
        dataset: QAOADataset,
        validation: Optional[QAOADataset] = None,
        callback: Optional[Callable[[int, float], None]] = None,
        compiled: Optional[CompiledDataset] = None,
    ) -> TrainingHistory:
        if len(dataset) == 0:
            raise DatasetError("cannot train on an empty dataset")
        if dataset.depth() != self.model.p:
            raise DatasetError(
                f"dataset depth {dataset.depth()} != model depth {self.model.p}"
            )
        history = TrainingHistory()
        profiler = self.profiler
        records = list(dataset)
        if not self.config.compile_batches:
            compiled = None
        elif compiled is None:
            with profiler.phase("compile"):
                compiled = CompiledDataset(
                    records,
                    feature_kind=self.model.feature_kind,
                    max_nodes=self.model.feature_budget,
                    build_plans=self.config.csr_kernels,
                )
        elif len(compiled) != len(records):
            raise DatasetError(
                f"prebuilt CompiledDataset has {len(compiled)} graphs, "
                f"dataset has {len(records)}"
            )
        # Satellite fix: the validation batch is structural — build it
        # once, not once per epoch.
        val_batch: Optional[GraphBatch] = None
        val_targets: Optional[Tensor] = None
        if validation is not None and len(validation) > 0:
            with profiler.phase("compile"):
                val_batch = GraphBatch.from_graphs(
                    validation.graphs(),
                    feature_kind=self.model.feature_kind,
                    max_nodes=self.model.feature_budget,
                )
                if self.config.csr_kernels:
                    val_batch.build_plans()
                val_targets = Tensor(validation.targets())
        for epoch in range(self.config.epochs):
            epoch_start = perf_counter()
            self.model.train()
            order = self._rng.permutation(len(records))
            epoch_loss = 0.0
            batches = 0
            for start in range(0, len(records), self.config.batch_size):
                chunk = order[start:start + self.config.batch_size]
                with profiler.phase("batch_assembly"):
                    if compiled is not None:
                        batch, targets = compiled.batch_and_targets(chunk)
                    else:
                        batch, targets = self._assemble_uncached(
                            [records[i] for i in chunk]
                        )
                epoch_loss += self._step(batch, targets)
                batches += 1
            epoch_loss /= max(batches, 1)
            history.epoch_times.append(perf_counter() - epoch_start)
            history.losses.append(epoch_loss)
            history.learning_rates.append(self.optimizer.learning_rate)
            if val_batch is not None:
                with profiler.phase("evaluate"):
                    history.validation_losses.append(
                        self.evaluate_loss(
                            validation, batch=val_batch, targets=val_targets
                        )
                    )
            self.scheduler.step(epoch_loss)
            if callback is not None:
                callback(epoch, epoch_loss)
            if (epoch + 1) % 20 == 0:
                logger.info(
                    "epoch %d/%d loss %.5f lr %.2e",
                    epoch + 1,
                    self.config.epochs,
                    epoch_loss,
                    self.optimizer.learning_rate,
                )
        if profiler.enabled:
            history.profile = profiler.report()
        return history

    def _assemble_uncached(self, records):
        """The seed path: rebuild the batch from raw graphs every step."""
        batch = GraphBatch.from_graphs(
            [r.graph for r in records],
            feature_kind=self.model.feature_kind,
            max_nodes=self.model.feature_budget,
        )
        if self.config.csr_kernels:
            batch.build_plans()
        targets = Tensor(np.stack([r.target_vector() for r in records]))
        return batch, targets

    def _step(self, batch: GraphBatch, targets: Tensor) -> float:
        """One optimization step on an assembled batch."""
        profiler = self.profiler
        self.optimizer.zero_grad()
        with profiler.phase("forward"):
            prediction = self.model(batch)
            loss = mse_loss(prediction, targets)
        with profiler.phase("backward"):
            loss.backward()
        with profiler.phase("optimizer"):
            if self._clipper is not None:
                self._clipper()
            self.optimizer.step()
        return loss.item()

    def _train_batch(self, records) -> float:
        """Back-compat helper: assemble from raw records and step once."""
        batch, targets = self._assemble_uncached(records)
        return self._step(batch, targets)

    def evaluate_loss(
        self,
        dataset: QAOADataset,
        batch: Optional[GraphBatch] = None,
        targets: Optional[Tensor] = None,
    ) -> float:
        """MSE of the model on ``dataset`` (eval mode, no gradient).

        ``batch``/``targets`` accept a prebuilt ``GraphBatch`` and
        target tensor for the dataset (``fit`` passes the hoisted
        validation batch); omitted, they are built from ``dataset``.
        """
        from repro.nn.tensor import no_grad

        self.model.eval()
        if batch is None:
            batch = GraphBatch.from_graphs(
                dataset.graphs(),
                feature_kind=self.model.feature_kind,
                max_nodes=self.model.feature_budget,
            )
        if targets is None:
            targets = Tensor(dataset.targets())
        with no_grad():
            prediction = self.model(batch)
            loss = mse_loss(prediction, targets)
        self.model.train()
        return loss.item()


def train_predictor(
    dataset: QAOADataset,
    arch: str = "gin",
    config: Optional[TrainingConfig] = None,
    model_kwargs: Optional[dict] = None,
    rng: RngLike = None,
) -> QAOAParameterPredictor:
    """One-call convenience: build a predictor and fit it on ``dataset``."""
    generator = ensure_rng(rng)
    kwargs = dict(model_kwargs) if model_kwargs else {}
    kwargs.setdefault("p", dataset.depth())
    model = QAOAParameterPredictor(arch=arch, rng=generator, **kwargs)
    trainer = Trainer(model, config, rng=generator)
    trainer.fit(dataset)
    model.eval()
    return model
