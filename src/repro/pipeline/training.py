"""Model training loop.

Matches the paper's "Implementation Details": Adam, MSE regression onto
the labeled ``(gamma, beta)`` vectors, ReduceLROnPlateau monitoring the
training loss (mode ``min``, divide-by-5 factor, patience 5, min lr
1e-5), 100 epochs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.data.dataset import QAOADataset
from repro.exceptions import DatasetError
from repro.gnn.batching import GraphBatch
from repro.gnn.predictor import QAOAParameterPredictor
from repro.nn.losses import mse_loss
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.schedulers import ReduceLROnPlateau
from repro.nn.tensor import Tensor
from repro.utils.logging import get_logger
from repro.utils.rng import RngLike, ensure_rng

logger = get_logger(__name__)


@dataclass
class TrainingConfig:
    """Hyperparameters of the paper's training setup."""

    epochs: int = 100
    batch_size: int = 32
    learning_rate: float = 1e-3
    grad_clip: float = 5.0
    scheduler_factor: float = 5.0  # paper phrasing; normalized to 1/5
    scheduler_patience: int = 5
    scheduler_min_lr: float = 1e-5
    weight_decay: float = 0.0
    seed: Optional[int] = None


@dataclass
class TrainingHistory:
    """Per-epoch records produced by :class:`Trainer.fit`."""

    losses: List[float] = field(default_factory=list)
    learning_rates: List[float] = field(default_factory=list)
    validation_losses: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        """Loss of the last epoch."""
        return self.losses[-1] if self.losses else float("nan")


class Trainer:
    """Trains a :class:`QAOAParameterPredictor` on a labeled dataset."""

    def __init__(
        self,
        model: QAOAParameterPredictor,
        config: Optional[TrainingConfig] = None,
        rng: RngLike = None,
    ):
        self.model = model
        self.config = config if config is not None else TrainingConfig()
        self._rng = ensure_rng(
            rng if rng is not None else self.config.seed
        )
        self.optimizer = Adam(
            model.parameters(),
            learning_rate=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        self.scheduler = ReduceLROnPlateau(
            self.optimizer,
            mode="min",
            factor=self.config.scheduler_factor,
            patience=self.config.scheduler_patience,
            min_lr=self.config.scheduler_min_lr,
        )

    def fit(
        self,
        dataset: QAOADataset,
        validation: Optional[QAOADataset] = None,
        callback: Optional[Callable[[int, float], None]] = None,
    ) -> TrainingHistory:
        """Run the full training loop; returns the loss history."""
        if len(dataset) == 0:
            raise DatasetError("cannot train on an empty dataset")
        if dataset.depth() != self.model.p:
            raise DatasetError(
                f"dataset depth {dataset.depth()} != model depth {self.model.p}"
            )
        history = TrainingHistory()
        records = list(dataset)
        for epoch in range(self.config.epochs):
            self.model.train()
            order = self._rng.permutation(len(records))
            epoch_loss = 0.0
            batches = 0
            for start in range(0, len(records), self.config.batch_size):
                batch_records = [
                    records[i]
                    for i in order[start:start + self.config.batch_size]
                ]
                loss = self._train_batch(batch_records)
                epoch_loss += loss
                batches += 1
            epoch_loss /= max(batches, 1)
            history.losses.append(epoch_loss)
            history.learning_rates.append(self.optimizer.learning_rate)
            if validation is not None and len(validation) > 0:
                history.validation_losses.append(self.evaluate_loss(validation))
            self.scheduler.step(epoch_loss)
            if callback is not None:
                callback(epoch, epoch_loss)
            if (epoch + 1) % 20 == 0:
                logger.info(
                    "epoch %d/%d loss %.5f lr %.2e",
                    epoch + 1,
                    self.config.epochs,
                    epoch_loss,
                    self.optimizer.learning_rate,
                )
        return history

    def _train_batch(self, records) -> float:
        batch = GraphBatch.from_graphs(
            [r.graph for r in records],
            feature_kind="degree_onehot",
            max_nodes=self.model.in_dim,
        )
        targets = Tensor(np.stack([r.target_vector() for r in records]))
        self.optimizer.zero_grad()
        prediction = self.model(batch)
        loss = mse_loss(prediction, targets)
        loss.backward()
        if self.config.grad_clip > 0:
            clip_grad_norm(self.model.parameters(), self.config.grad_clip)
        self.optimizer.step()
        return loss.item()

    def evaluate_loss(self, dataset: QAOADataset) -> float:
        """MSE of the model on ``dataset`` (eval mode, no gradient)."""
        from repro.nn.tensor import no_grad

        self.model.eval()
        batch = GraphBatch.from_graphs(
            dataset.graphs(),
            feature_kind="degree_onehot",
            max_nodes=self.model.in_dim,
        )
        targets = Tensor(dataset.targets())
        with no_grad():
            prediction = self.model(batch)
            loss = mse_loss(prediction, targets)
        self.model.train()
        return loss.item()


def train_predictor(
    dataset: QAOADataset,
    arch: str = "gin",
    config: Optional[TrainingConfig] = None,
    model_kwargs: Optional[dict] = None,
    rng: RngLike = None,
) -> QAOAParameterPredictor:
    """One-call convenience: build a predictor and fit it on ``dataset``."""
    generator = ensure_rng(rng)
    kwargs = dict(model_kwargs) if model_kwargs else {}
    kwargs.setdefault("p", dataset.depth())
    model = QAOAParameterPredictor(arch=arch, rng=generator, **kwargs)
    trainer = Trainer(model, config, rng=generator)
    trainer.fit(dataset)
    model.eval()
    return model
