"""Markdown report generation from an experiment run.

Turns an :class:`repro.pipeline.experiment.ExperimentReport` into a
self-contained markdown document — the artifact a practitioner would
attach to a run: dataset summary, repair reports, Table 1, per-instance
Figure 5 data and training curves.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.analysis.figures import comparison_series
from repro.analysis.tables import PAPER_TABLE1
from repro.pipeline.experiment import ExperimentReport

PathLike = Union[str, Path]


def render_markdown_report(report: ExperimentReport, title: str = "") -> str:
    """Render the full experiment report as markdown."""
    lines = []
    lines.append(f"# {title or 'QAOA warm-start experiment report'}")
    lines.append("")

    summary = report.dataset_summary
    lines.append("## Dataset")
    lines.append("")
    lines.append(
        f"- {summary['count']} labeled graphs, "
        f"{summary['min_nodes']}-{summary['max_nodes']} nodes"
    )
    lines.append(
        f"- label approximation ratio: mean {summary['mean_ar']:.3f}, "
        f"range [{summary['min_ar']:.3f}, {summary['max_ar']:.3f}]"
    )
    if report.relabel_report is not None:
        relabeled = report.relabel_report
        lines.append(
            f"- fixed-angle relabeling: {relabeled.eligible}/"
            f"{relabeled.total} eligible "
            f"({relabeled.coverage_fraction:.1%}), "
            f"{relabeled.relabeled} relabeled"
        )
    if report.pruning_report is not None:
        pruning = report.pruning_report
        lines.append(
            f"- selective pruning: kept {pruning.kept}, pruned "
            f"{pruning.pruned}, rescued {pruning.rescued}; mean AR "
            f"{pruning.mean_ar_before:.3f} -> {pruning.mean_ar_after:.3f}"
        )
    lines.append("")

    lines.append("## Table 1 — improvement over random initialization")
    lines.append("")
    lines.append("| Method | Improvement (pp) | Paper | Win rate | N |")
    lines.append("|---|---|---|---|---|")
    for name, result in report.results.items():
        paper = PAPER_TABLE1.get(name.lower())
        paper_cell = f"{paper[0]:.2f} ± {paper[1]:.2f}" if paper else "—"
        lines.append(
            f"| {name} | {result.mean_improvement:+.2f} ± "
            f"{result.std_improvement:.2f} | {paper_cell} | "
            f"{result.win_rate():.2f} | {len(result.comparisons)} |"
        )
    lines.append("")

    lines.append("## Training")
    lines.append("")
    for arch, losses in report.training_losses.items():
        if losses:
            lines.append(
                f"- {arch}: loss {losses[0]:.4f} -> {losses[-1]:.4f} "
                f"over {len(losses)} epochs"
            )
    lines.append("")

    lines.append("## Per-instance results (Figure 5 data)")
    lines.append("")
    for arch, result in report.results.items():
        lines.append(f"### {arch}")
        lines.append("")
        lines.append("| graph | n | degree | random AR | warm AR | Δ (pp) |")
        lines.append("|---|---|---|---|---|---|")
        for row in comparison_series(result):
            lines.append(
                f"| {row['graph'] or row['index']} | {row['num_nodes']} | "
                f"{row['degree']} | {row['random_ar']:.3f} | "
                f"{row['strategy_ar']:.3f} | "
                f"{row['improvement_pp']:+.2f} |"
            )
        lines.append("")
    return "\n".join(lines)


def write_markdown_report(
    report: ExperimentReport, path: PathLike, title: str = ""
) -> Path:
    """Render and write the report; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_markdown_report(report, title))
    return path
