"""Training and evaluation pipeline."""

from repro.pipeline.training import (
    Trainer,
    TrainingConfig,
    TrainingHistory,
    train_predictor,
)
from repro.pipeline.evaluation import (
    EvaluationResult,
    WarmStartComparison,
    WarmStartEvaluator,
)
from repro.pipeline.experiment import (
    ExperimentConfig,
    ExperimentReport,
    run_experiment,
)
from repro.pipeline.crossval import (
    CrossValResult,
    cross_validate,
    cross_validate_architectures,
)
from repro.pipeline.convergence import (
    ConvergenceAnalyzer,
    ConvergenceComparison,
    ConvergenceReport,
    iterations_to_threshold,
)
from repro.pipeline.reporting import (
    render_markdown_report,
    write_markdown_report,
)

__all__ = [
    "Trainer",
    "TrainingConfig",
    "TrainingHistory",
    "train_predictor",
    "EvaluationResult",
    "WarmStartComparison",
    "WarmStartEvaluator",
    "ExperimentConfig",
    "ExperimentReport",
    "run_experiment",
    "CrossValResult",
    "cross_validate",
    "cross_validate_architectures",
    "ConvergenceAnalyzer",
    "ConvergenceComparison",
    "ConvergenceReport",
    "iterations_to_threshold",
    "render_markdown_report",
    "write_markdown_report",
]
