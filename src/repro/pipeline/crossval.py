"""K-fold cross-validated evaluation of warm-start models.

The paper reports a single train/test split; cross-validation gives the
same quantity with error bars over folds, which matters at small
dataset scales where a lucky split can flip the ranking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.data.dataset import QAOADataset
from repro.data.splits import kfold_indices
from repro.exceptions import DatasetError
from repro.gnn.predictor import QAOAParameterPredictor
from repro.pipeline.evaluation import WarmStartEvaluator
from repro.pipeline.training import Trainer, TrainingConfig
from repro.utils.rng import RngLike, ensure_rng, spawn_rng


@dataclass
class CrossValResult:
    """Per-fold improvements and their aggregate."""

    arch: str
    fold_improvements: List[float] = field(default_factory=list)
    fold_win_rates: List[float] = field(default_factory=list)

    @property
    def mean_improvement(self) -> float:
        """Mean of fold means."""
        return float(np.mean(self.fold_improvements))

    @property
    def std_improvement(self) -> float:
        """Std across folds (split-to-split variability)."""
        return float(np.std(self.fold_improvements))


def cross_validate(
    dataset: QAOADataset,
    arch: str = "gin",
    folds: int = 4,
    training: Optional[TrainingConfig] = None,
    eval_optimizer_iters: int = 15,
    model_kwargs: Optional[dict] = None,
    rng: RngLike = None,
) -> CrossValResult:
    """Train/evaluate ``arch`` across k folds, return per-fold stats."""
    if len(dataset) < folds * 2:
        raise DatasetError(
            f"{len(dataset)} records too few for {folds} folds"
        )
    master = ensure_rng(rng)
    training = training if training is not None else TrainingConfig(epochs=30)
    fold_sets = kfold_indices(len(dataset), folds, spawn_rng(master))
    result = CrossValResult(arch=arch)
    kwargs = dict(model_kwargs) if model_kwargs else {}
    kwargs.setdefault("p", dataset.depth())
    for fold in fold_sets:
        fold_set = set(int(i) for i in fold)
        train = QAOADataset(
            [r for i, r in enumerate(dataset) if i not in fold_set]
        )
        test = QAOADataset([r for i, r in enumerate(dataset) if i in fold_set])
        model = QAOAParameterPredictor(arch=arch, rng=spawn_rng(master), **kwargs)
        Trainer(model, training, rng=spawn_rng(master)).fit(train)
        model.eval()
        evaluator = WarmStartEvaluator(
            p=kwargs["p"],
            optimizer_iters=eval_optimizer_iters,
            rng=spawn_rng(master),
        )
        evaluation = evaluator.evaluate_model(test.graphs(), model)
        result.fold_improvements.append(evaluation.mean_improvement)
        result.fold_win_rates.append(evaluation.win_rate())
    return result


def cross_validate_architectures(
    dataset: QAOADataset,
    architectures=("gat", "gcn", "gin", "sage"),
    folds: int = 4,
    training: Optional[TrainingConfig] = None,
    eval_optimizer_iters: int = 15,
    rng: RngLike = None,
) -> Dict[str, CrossValResult]:
    """Cross-validate every architecture with a shared RNG stream."""
    master = ensure_rng(rng)
    return {
        arch: cross_validate(
            dataset,
            arch,
            folds=folds,
            training=training,
            eval_optimizer_iters=eval_optimizer_iters,
            rng=spawn_rng(master),
        )
        for arch in architectures
    }
