"""Convergence-speed analysis: iterations saved by a warm start.

The paper's motivation promises that warm starts "enable the QAOA to
achieve convergence with fewer iterations on quantum computers". This
module measures exactly that: for each test graph, run the optimizer
from both initializations, record the expectation trace, and compare
how many iterations each needs to reach a target approximation ratio.
Every saved iteration is a saved batch of circuit executions on real
hardware — the quantum-resource currency of the paper's argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import DatasetError
from repro.graphs.graph import Graph
from repro.maxcut.problem import MaxCutProblem
from repro.qaoa.initialization import (
    InitializationStrategy,
    RandomInitialization,
)
from repro.qaoa.optimizers import AdamOptimizer
from repro.qaoa.simulator import QAOASimulator
from repro.utils.rng import RngLike, ensure_rng, spawn_rng


def iterations_to_threshold(
    history: Sequence[float], threshold: float
) -> Optional[int]:
    """First 1-based iteration whose value reaches ``threshold``.

    ``None`` when the trace never gets there — callers decide how to
    penalize non-convergence.
    """
    for index, value in enumerate(history):
        if value >= threshold:
            return index + 1
    return None


@dataclass
class ConvergenceComparison:
    """Per-graph convergence race between two initializations.

    ``*_iterations`` is ``None`` when that arm never reached the target
    within the budget.
    """

    graph_name: str
    target_ratio: float
    random_iterations: Optional[int]
    warm_iterations: Optional[int]
    budget: int

    def saved_iterations(self) -> int:
        """Iterations saved by the warm start (non-reaching = budget)."""
        random_cost = (
            self.random_iterations
            if self.random_iterations is not None
            else self.budget
        )
        warm_cost = (
            self.warm_iterations
            if self.warm_iterations is not None
            else self.budget
        )
        return random_cost - warm_cost


@dataclass
class ConvergenceReport:
    """Aggregate of convergence races over a test set."""

    target_ratio: float
    budget: int
    comparisons: List[ConvergenceComparison] = field(default_factory=list)

    @property
    def mean_saved_iterations(self) -> float:
        """Average iterations saved per instance."""
        if not self.comparisons:
            return 0.0
        return float(
            np.mean([c.saved_iterations() for c in self.comparisons])
        )

    def reach_rate(self, arm: str) -> float:
        """Fraction of instances where ``arm`` reached the target."""
        if not self.comparisons:
            return 0.0
        if arm == "random":
            reached = [c.random_iterations is not None for c in self.comparisons]
        elif arm == "warm":
            reached = [c.warm_iterations is not None for c in self.comparisons]
        else:
            raise DatasetError(f"unknown arm {arm!r}")
        return float(np.mean(reached))

    def summary(self) -> dict:
        """Dict form for tables."""
        return {
            "target_ratio": self.target_ratio,
            "budget": self.budget,
            "mean_saved_iterations": self.mean_saved_iterations,
            "random_reach_rate": self.reach_rate("random"),
            "warm_reach_rate": self.reach_rate("warm"),
            "count": len(self.comparisons),
        }


class ConvergenceAnalyzer:
    """Runs the convergence race over a list of graphs."""

    def __init__(
        self,
        p: int = 1,
        budget: int = 200,
        target_ratio: float = 0.9,
        learning_rate: float = 0.05,
        rng: RngLike = None,
    ):
        if not 0.0 < target_ratio <= 1.0:
            raise DatasetError("target ratio must be in (0, 1]")
        self.p = p
        self.budget = budget
        self.target_ratio = target_ratio
        self.learning_rate = learning_rate
        self._rng = ensure_rng(rng)

    def compare(
        self,
        graphs: Sequence[Graph],
        warm_strategy: InitializationStrategy,
    ) -> ConvergenceReport:
        """Race random vs ``warm_strategy`` on every graph.

        The target is ``target_ratio`` times each instance's best
        *achievable* p-depth expectation (estimated by a long optimized
        run), so the threshold is fair across instances of different
        hardness.
        """
        if not graphs:
            raise DatasetError("no graphs")
        report = ConvergenceReport(
            target_ratio=self.target_ratio, budget=self.budget
        )
        random_strategy = RandomInitialization()
        optimizer = AdamOptimizer(learning_rate=self.learning_rate)
        for graph in graphs:
            problem = MaxCutProblem(graph)
            simulator = QAOASimulator(problem)
            # estimate the achievable value with two generous polished runs
            achievable = -np.inf
            for _ in range(2):
                seed_g, seed_b = random_strategy.initial_parameters(
                    graph, self.p, spawn_rng(self._rng)
                )
                polished = optimizer.run(
                    simulator,
                    seed_g,
                    seed_b,
                    max_iters=max(2 * self.budget, 100),
                )
                achievable = max(achievable, polished.expectation)
            threshold = self.target_ratio * achievable

            random_g, random_b = random_strategy.initial_parameters(
                graph, self.p, spawn_rng(self._rng)
            )
            random_run = optimizer.run(
                simulator, random_g, random_b, max_iters=self.budget
            )
            warm_g, warm_b = warm_strategy.initial_parameters(
                graph, self.p, spawn_rng(self._rng)
            )
            warm_run = optimizer.run(
                simulator, warm_g, warm_b, max_iters=self.budget
            )
            report.comparisons.append(
                ConvergenceComparison(
                    graph_name=graph.name,
                    target_ratio=self.target_ratio,
                    random_iterations=iterations_to_threshold(
                        random_run.history, threshold
                    ),
                    warm_iterations=iterations_to_threshold(
                        warm_run.history, threshold
                    ),
                    budget=self.budget,
                )
            )
        return report
