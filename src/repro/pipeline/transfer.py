"""Size-generalization evaluation: does the model transfer beyond n=15?

The paper's pipeline trains and evaluates on graphs up to 15 nodes
(the dense statevector bound). A size-agnostic feature kind removes the
architectural cap — this module measures whether the *learned mapping*
actually transfers, by scoring the model's predicted angles on regular
graphs far above the training sizes.

Scoring never touches a statevector: every angle pair is evaluated on
the exact p=1 closed form (:mod:`repro.qaoa.analytic`), so 200-node
graphs cost O(edges) per probe. Three strategies are compared per graph:

- **model** — the GNN's predicted angles,
- **fixed** — the degree-d fixed-angle table entry,
- **optimum** — the best angles on the closed-form surface
  (deterministic grid + refinement), the normalizer.

The reported ``*_ratio`` values are expectation ratios against that p=1
optimum: 1.0 means the strategy found the best depth-1 angles for the
instance; the gap to 1.0 is regret attributable to the angle choice
alone. Everything is deterministic for a fixed seed.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

import numpy as np

from repro.exceptions import FixedAngleLookupError, ModelError
from repro.gnn.predictor import QAOAParameterPredictor
from repro.graphs.generators import regular_graph_family
from repro.qaoa.analytic import p1_expectation, p1_optimize_angles
from repro.qaoa.fixed_angles import fixed_angles_for_graph
from repro.utils.logging import get_logger
from repro.utils.rng import RngLike, ensure_rng

logger = get_logger(__name__)

#: Default transfer sweep: well beyond the n<=15 training regime.
DEFAULT_TRANSFER_NODES = (50, 100, 200)
DEFAULT_TRANSFER_DEGREE = 3
DEFAULT_GRAPHS_PER_SIZE = 4


def evaluate_size_transfer(
    model: QAOAParameterPredictor,
    node_sizes: Sequence[int] = DEFAULT_TRANSFER_NODES,
    degree: int = DEFAULT_TRANSFER_DEGREE,
    graphs_per_size: int = DEFAULT_GRAPHS_PER_SIZE,
    rng: RngLike = None,
) -> dict:
    """Score the model's angles on regular graphs of each listed size.

    Returns a JSON-safe report with one entry per size. Raises
    :class:`~repro.exceptions.ModelError` when the model's feature kind
    caps it below a requested size (one-hot featurizations cannot embed
    a graph larger than their budget), or when the model's depth is not
    1 (the closed-form oracle is exact only at p=1).
    """
    if model.p != 1:
        raise ModelError(
            "size-transfer evaluation scores angles on the exact p=1 "
            f"closed form; model predicts depth {model.p}"
        )
    if graphs_per_size < 1:
        raise ModelError("graphs_per_size must be >= 1")
    sizes = [int(size) for size in node_sizes]
    if not sizes:
        raise ModelError("node_sizes must be non-empty")
    cap = model.max_nodes
    for size in sizes:
        if cap is not None and size > cap:
            raise ModelError(
                f"model feature kind {model.feature_kind!r} caps inputs "
                f"at {cap} nodes; cannot evaluate transfer to {size}. "
                "Train with a size-agnostic feature kind (structural, "
                "wl_histogram, degree_positional) instead."
            )
    generator = ensure_rng(rng)

    per_size: List[dict] = []
    for size in sizes:
        graphs = regular_graph_family(
            [size], degree, count_per_size=graphs_per_size, rng=generator
        )
        if not graphs:
            raise ModelError(
                f"no {degree}-regular graph exists on {size} nodes "
                "(n * degree must be even and degree < n)"
            )
        start = time.perf_counter()
        predictions = model.predict(graphs)
        predict_s = time.perf_counter() - start

        model_ratios = []
        fixed_ratios = []
        optimum_fractions = []
        for row, graph in enumerate(graphs):
            gamma = float(predictions[row][0])
            beta = float(predictions[row][model.p])
            model_exp = p1_expectation(graph, gamma, beta)
            _, _, optimum_exp = p1_optimize_angles(graph)
            try:
                fixed = fixed_angles_for_graph(graph, p=1)
                fixed_exp = p1_expectation(
                    graph, float(fixed.gammas[0]), float(fixed.betas[0])
                )
            except FixedAngleLookupError:
                fixed_exp = None
            model_ratios.append(model_exp / optimum_exp)
            if fixed_exp is not None:
                fixed_ratios.append(fixed_exp / optimum_exp)
            optimum_fractions.append(optimum_exp / graph.num_edges)

        entry: Dict[str, object] = {
            "num_nodes": size,
            "num_graphs": len(graphs),
            "model_ratio": float(np.mean(model_ratios)),
            "model_ratio_min": float(np.min(model_ratios)),
            "fixed_ratio": (
                float(np.mean(fixed_ratios)) if fixed_ratios else None
            ),
            "model_vs_fixed": (
                float(np.mean(model_ratios) - np.mean(fixed_ratios))
                if fixed_ratios
                else None
            ),
            "optimum_edge_fraction": float(np.mean(optimum_fractions)),
            "predict_ms_per_graph": predict_s * 1000.0 / len(graphs),
        }
        per_size.append(entry)
        logger.info(
            "transfer n=%d: model %.4f vs fixed %s of p=1 optimum",
            size,
            entry["model_ratio"],
            "n/a" if entry["fixed_ratio"] is None
            else f"{entry['fixed_ratio']:.4f}",
        )

    return {
        "degree": int(degree),
        "graphs_per_size": int(graphs_per_size),
        "model": {
            "arch": model.arch,
            "p": model.p,
            "feature_kind": model.feature_kind,
            "max_nodes": cap,
        },
        "sizes": per_size,
    }
