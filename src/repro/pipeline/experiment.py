"""End-to-end experiment runner.

One call reproduces the paper's whole pipeline at a configurable scale:
generate + label a dataset, apply the data-quality repairs, train one
predictor per architecture, and evaluate every predictor against random
initialization on a held-out test set. The benchmarks drive this with
per-experiment configurations recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.data.dataset import QAOADataset
from repro.data.generation import GenerationConfig, generate_dataset
from repro.data.pruning import fixed_angle_relabel, selective_data_pruning
from repro.data.splits import stratified_split
from repro.gnn.predictor import QAOAParameterPredictor
from repro.pipeline.evaluation import EvaluationResult, WarmStartEvaluator
from repro.pipeline.training import Trainer, TrainingConfig
from repro.utils.logging import get_logger
from repro.utils.rng import ensure_rng, spawn_rng

logger = get_logger(__name__)


@dataclass
class ExperimentConfig:
    """Everything one experiment run needs.

    Defaults are scaled for minutes-long runs; ``paper_scale()`` matches
    the paper's dataset and budgets.
    """

    generation: GenerationConfig = field(default_factory=GenerationConfig)
    training: TrainingConfig = field(default_factory=TrainingConfig)
    architectures: Sequence[str] = ("gat", "gcn", "gin", "sage")
    test_size: int = 40
    eval_optimizer_iters: int = 60
    prune_threshold: float = 0.7
    selective_rate: float = 0.7
    apply_fixed_angle_relabel: bool = True
    hidden_dim: int = 32
    num_layers: int = 2
    dropout: float = 0.5
    seed: int = 0

    @classmethod
    def paper_scale(cls) -> "ExperimentConfig":
        """The paper's full-scale setup (hours of CPU time)."""
        return cls(
            generation=GenerationConfig(
                num_graphs=9598,
                min_nodes=2,
                max_nodes=15,
                optimizer_iters=500,
            ),
            training=TrainingConfig(epochs=100),
            test_size=100,
            eval_optimizer_iters=500,
        )


@dataclass
class ExperimentReport:
    """Outputs of :func:`run_experiment`."""

    dataset_summary: dict
    pruning_report: Optional[object]
    relabel_report: Optional[object]
    results: Dict[str, EvaluationResult]
    training_losses: Dict[str, List[float]]
    models: Dict[str, QAOAParameterPredictor] = field(default_factory=dict)

    def table1(self) -> Dict[str, dict]:
        """Per-architecture Table 1 rows (mean/std improvement)."""
        return {name: result.summary() for name, result in self.results.items()}


def run_experiment(config: Optional[ExperimentConfig] = None) -> ExperimentReport:
    """Run the full pipeline and return the report.

    Steps: generate -> (optional) fixed-angle relabel -> selective data
    pruning -> stratified train/test split -> train each architecture ->
    paired warm-start evaluation.
    """
    if config is None:
        config = ExperimentConfig()
    master = ensure_rng(config.seed)

    logger.info("generating dataset (%d graphs)", config.generation.num_graphs)
    dataset = generate_dataset(config.generation, spawn_rng(master))
    dataset_summary = dataset.summary()

    relabel_report = None
    if config.apply_fixed_angle_relabel:
        dataset, relabel_report = fixed_angle_relabel(dataset)
        logger.info(
            "fixed-angle relabel: %d/%d eligible, %d relabeled",
            relabel_report.eligible,
            relabel_report.total,
            relabel_report.relabeled,
        )

    pruning_report = None
    if config.prune_threshold > 0.0:
        dataset, pruning_report = selective_data_pruning(
            dataset,
            threshold=config.prune_threshold,
            selective_rate=config.selective_rate,
            rng=spawn_rng(master),
        )
        logger.info(
            "selective pruning kept %d (pruned %d, rescued %d)",
            pruning_report.kept,
            pruning_report.pruned,
            pruning_report.rescued,
        )

    train_set, test_set = stratified_split(
        dataset, config.test_size, spawn_rng(master)
    )
    test_graphs = test_set.graphs()

    evaluator = WarmStartEvaluator(
        p=config.generation.p,
        optimizer_iters=config.eval_optimizer_iters,
        rng=spawn_rng(master),
    )

    results: Dict[str, EvaluationResult] = {}
    losses: Dict[str, List[float]] = {}
    models: Dict[str, QAOAParameterPredictor] = {}
    for arch in config.architectures:
        logger.info("training %s", arch)
        model = QAOAParameterPredictor(
            arch=arch,
            p=config.generation.p,
            hidden_dim=config.hidden_dim,
            num_layers=config.num_layers,
            dropout=config.dropout,
            rng=spawn_rng(master),
        )
        trainer = Trainer(model, config.training, rng=spawn_rng(master))
        history = trainer.fit(train_set)
        model.eval()
        losses[arch] = history.losses
        models[arch] = model
        results[arch] = evaluator.evaluate_model(test_graphs, model, arch)
        logger.info(
            "%s: improvement %.2f +/- %.2f",
            arch,
            results[arch].mean_improvement,
            results[arch].std_improvement,
        )

    return ExperimentReport(
        dataset_summary=dataset_summary,
        pruning_report=pruning_report,
        relabel_report=relabel_report,
        results=results,
        training_losses=losses,
        models=models,
    )
