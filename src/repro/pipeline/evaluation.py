"""Warm-start evaluation: GNN initialization vs random initialization.

Reproduces the paper's experiment (Section 4): for each held-out test
graph, run QAOA once from a random initialization and once from the
model's predicted parameters under the same optimizer budget, and
compare the achieved approximation ratios. The headline quantity is the
per-graph *improvement* in percentage points,
``100 * (AR_gnn - AR_random)``, whose mean and standard deviation across
the test set form Table 1; the per-graph traces form Figure 5.

Two execution engines run the same experiment:

* the **serial** engine runs one paired comparison per task (optionally
  fanned out through :class:`~repro.runtime.ParallelExecutor`);
* the **batched** engine buckets test graphs by node count, stacks both
  arms of every graph in a bucket into one ``(K, 2^n)`` statevector
  block, and drives all K instances through the full ansatz, adjoint
  gradient, and a lock-step optimizer per sweep
  (:mod:`repro.qaoa.batched`). Per-arm seeds are derived identically,
  and the batched kernels compute the same per-instance quantities on
  a cheaper op schedule, so per-graph results agree with the serial
  engine to a few ulp (tests pin the divergence below ``1e-10``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import DatasetError, ExecutionError
from repro.gnn.predictor import QAOAParameterPredictor
from repro.graphs.graph import Graph
from repro.maxcut.cache import ProblemCache
from repro.maxcut.problem import MaxCutProblem
from repro.profiling import NULL_PROFILER
from repro.qaoa.batched import BatchedAdamOptimizer, BatchedQAOASimulator
from repro.qaoa.initialization import (
    InitializationStrategy,
    RandomInitialization,
)
from repro.qaoa.runner import QAOARunner
from repro.runtime import ParallelExecutor, derive_task_seeds, task_rng
from repro.utils.logging import get_logger
from repro.utils.rng import RngLike, ensure_rng

logger = get_logger(__name__)


@dataclass
class WarmStartComparison:
    """Per-graph outcome of the random-vs-strategy comparison.

    Attributes
    ----------
    graph_name:
        Instance identifier.
    num_nodes, degree:
        Instance shape (degree = regular degree or max degree).
    random_ratio, strategy_ratio:
        Final approximation ratios from each initialization.
    random_initial_ratio, strategy_initial_ratio:
        Ratios *before* optimization (initialization quality itself).
    improvement:
        ``100 * (strategy_ratio - random_ratio)`` percentage points.
    """

    graph_name: str
    num_nodes: int
    degree: int
    random_ratio: float
    strategy_ratio: float
    random_initial_ratio: float
    strategy_initial_ratio: float

    @property
    def improvement(self) -> float:
        """Improvement over random init, in percentage points."""
        return 100.0 * (self.strategy_ratio - self.random_ratio)


@dataclass
class EvaluationResult:
    """Aggregate of a full test-set evaluation (one Table 1 cell).

    ``comparisons`` carries the per-graph traces used by Figure 5.
    """

    strategy_name: str
    comparisons: List[WarmStartComparison] = field(default_factory=list)

    @property
    def improvements(self) -> np.ndarray:
        """Per-graph improvements in percentage points."""
        return np.asarray([c.improvement for c in self.comparisons])

    @property
    def mean_improvement(self) -> float:
        """Mean improvement (Table 1 value)."""
        return float(self.improvements.mean()) if self.comparisons else 0.0

    @property
    def std_improvement(self) -> float:
        """Standard deviation of the improvement (Table 1 +/-)."""
        return float(self.improvements.std()) if self.comparisons else 0.0

    @property
    def sem_improvement(self) -> float:
        """Standard error of the mean improvement.

        Sample standard deviation (``ddof=1``) over ``sqrt(count)``;
        0.0 when fewer than two comparisons exist (the sample standard
        deviation is undefined for a single observation).
        """
        n = len(self.comparisons)
        if n < 2:
            return 0.0
        return float(self.improvements.std(ddof=1) / np.sqrt(n))

    @property
    def random_ratios(self) -> np.ndarray:
        """Per-graph final AR from random initialization (Fig 5 orange)."""
        return np.asarray([c.random_ratio for c in self.comparisons])

    @property
    def strategy_ratios(self) -> np.ndarray:
        """Per-graph final AR from the strategy (Fig 5 blue)."""
        return np.asarray([c.strategy_ratio for c in self.comparisons])

    def win_rate(self) -> float:
        """Fraction of test graphs where the strategy is at least as good."""
        if not self.comparisons:
            return 0.0
        return float((self.improvements >= 0.0).mean())

    def summary(self) -> Dict[str, float]:
        """Dict form for tables and JSON export.

        Safe on an empty result: all aggregates report 0.0 rather than
        dividing by a zero-length array.
        """
        empty = not self.comparisons
        return {
            "strategy": self.strategy_name,
            "mean_improvement": self.mean_improvement,
            "std_improvement": self.std_improvement,
            "sem_improvement": self.sem_improvement,
            "win_rate": self.win_rate(),
            "mean_random_ar": 0.0 if empty else float(self.random_ratios.mean()),
            "mean_strategy_ar": (
                0.0 if empty else float(self.strategy_ratios.mean())
            ),
            "std_random_ar": 0.0 if empty else float(self.random_ratios.std()),
            "std_strategy_ar": (
                0.0 if empty else float(self.strategy_ratios.std())
            ),
            "count": len(self.comparisons),
        }


def _graph_degree(graph: Graph) -> int:
    """Regular degree if the graph is regular, else max degree."""
    degree = graph.regular_degree()
    if degree is None:
        degree = graph.max_degree()
    return degree


def _comparison_task(payload) -> WarmStartComparison:
    """Run the paired random-vs-strategy comparison on one graph.

    Module-level (tuple payload) so the process backend can pickle it.
    The two per-arm seeds are pre-derived in graph order, so any backend
    reproduces the serial comparison bit for bit. Both arms share one
    simulator, so the cost diagonal, brute-force optimum, and simulator
    workspaces are built once per graph instead of once per arm.
    """
    runner, graph, random_strategy, strategy, seed_random, seed_strategy = (
        payload
    )
    simulator = runner.simulator_for(graph)
    random_outcome = runner.run(
        graph, random_strategy, task_rng(seed_random), simulator=simulator
    )
    strategy_outcome = runner.run(
        graph, strategy, task_rng(seed_strategy), simulator=simulator
    )
    return WarmStartComparison(
        graph_name=graph.name,
        num_nodes=graph.num_nodes,
        degree=_graph_degree(graph),
        random_ratio=random_outcome.approximation_ratio,
        strategy_ratio=strategy_outcome.approximation_ratio,
        random_initial_ratio=random_outcome.initial_approximation_ratio,
        strategy_initial_ratio=strategy_outcome.initial_approximation_ratio,
    )


#: One graph's slot in a bucket: (graph, random-arm seed, strategy-arm seed).
_BucketEntry = Tuple[Graph, int, int]


def _bucket_task(payload) -> List[WarmStartComparison]:
    """Run one size bucket through the batched engine.

    Each graph contributes two adjacent instance rows — ``2j`` for the
    random arm and ``2j + 1`` for the strategy arm — to a single
    ``(K, 2^n)`` statevector stack, and all ``K`` instances march
    through the lock-step optimizer together. Initial parameters are
    drawn from ``task_rng(seed)`` exactly as the serial
    :meth:`QAOARunner.run` would, and the batched kernels compute the
    same per-instance quantities as the serial simulator (on a cheaper
    op schedule), so the returned comparisons agree with the serial
    engine's to a few ulp.
    """
    (
        entries,
        random_strategy,
        strategy,
        p,
        optimizer,
        max_iters,
        tol,
        cache,
    ) = payload
    problems: List[MaxCutProblem] = []
    gamma_rows: List[np.ndarray] = []
    beta_rows: List[np.ndarray] = []
    for graph, seed_random, seed_strategy in entries:
        problem = cache.get(graph) if cache is not None else MaxCutProblem(graph)
        for arm_strategy, seed in (
            (random_strategy, seed_random),
            (strategy, seed_strategy),
        ):
            gammas0, betas0 = arm_strategy.initial_parameters(
                graph, p, task_rng(seed)
            )
            problems.append(problem)
            gamma_rows.append(np.asarray(gammas0, dtype=np.float64))
            beta_rows.append(np.asarray(betas0, dtype=np.float64))
    simulator = BatchedQAOASimulator(problems)
    gammas = np.stack(gamma_rows)
    betas = np.stack(beta_rows)
    initial = simulator.expectations(gammas, betas)
    result = optimizer.run(
        simulator, gammas, betas, max_iters=max_iters, tol=tol
    )
    comparisons = []
    for j, (graph, _, _) in enumerate(entries):
        problem = problems[2 * j]
        comparisons.append(
            WarmStartComparison(
                graph_name=graph.name,
                num_nodes=graph.num_nodes,
                degree=_graph_degree(graph),
                random_ratio=problem.approximation_ratio(
                    float(result.expectations[2 * j])
                ),
                strategy_ratio=problem.approximation_ratio(
                    float(result.expectations[2 * j + 1])
                ),
                random_initial_ratio=problem.approximation_ratio(
                    float(initial[2 * j])
                ),
                strategy_initial_ratio=problem.approximation_ratio(
                    float(initial[2 * j + 1])
                ),
            )
        )
    return comparisons


def _size_buckets(
    graphs: Sequence[Graph], max_bucket: int
) -> List[List[int]]:
    """Graph indices grouped by node count, chunked to the bucket cap.

    ``max_bucket`` caps the *instance rows* per batch; each graph
    contributes two rows (one per arm), so chunks hold at most
    ``max(1, max_bucket // 2)`` graphs. Order within a bucket follows
    the input order, so seeds line up with the serial engine.
    """
    by_size: Dict[int, List[int]] = {}
    for index, graph in enumerate(graphs):
        by_size.setdefault(graph.num_nodes, []).append(index)
    chunk = max(1, max_bucket // 2)
    buckets = []
    for size in sorted(by_size):
        indices = by_size[size]
        for start in range(0, len(indices), chunk):
            buckets.append(indices[start : start + chunk])
    return buckets


class WarmStartEvaluator:
    """Runs the paired random-vs-strategy comparison over test graphs.

    The *same* optimizer budget is used on both arms; the random arm's
    initial angles are drawn independently per graph from the shared RNG
    stream, so comparisons are paired but unbiased.

    ``executor`` fans the per-graph comparisons (serial engine) or
    per-bucket blocks (batched engine) out through the parallel runtime
    (default: serial). Per-arm seeds are derived from the evaluator RNG
    in graph order before dispatch, so results are bit-identical across
    backends, match the historical serial loop, and agree between the
    serial and batched engines to a few ulp.

    Parameters
    ----------
    batched:
        Use the batched engine: bucket test graphs by node count and
        simulate every instance in a bucket in lock step
        (:mod:`repro.qaoa.batched`). Agrees with the serial engine
        within ``1e-10`` per graph; much faster on many-graph sweeps.
    max_bucket:
        Batched engine only — maximum instance rows per ``(K, 2^n)``
        stack. Each graph contributes two rows.
    problem_cache:
        Shared :class:`~repro.maxcut.cache.ProblemCache`; defaults to a
        fresh cache, so both arms of every comparison (and structurally
        repeated graphs) share one cost diagonal and brute-force
        optimum. Under the process backend the cache pickles to empty
        and deduplicates within each worker task only.
    profiler:
        Optional :class:`~repro.profiling.PhaseProfiler`; records
        ``prepare`` / ``optimize`` / ``aggregate`` phases per sweep.
    retries, task_timeout_s:
        Fault tolerance for the default executor (ignored when an
        ``executor`` is passed): extra attempts per comparison task and
        a wall-clock budget per attempt. Retried tasks reuse their
        pre-derived seeds, so results stay bit-identical.
    """

    def __init__(
        self,
        p: int = 1,
        optimizer_iters: int = 60,
        learning_rate: float = 0.05,
        rng: RngLike = None,
        executor: Optional[ParallelExecutor] = None,
        batched: bool = False,
        max_bucket: int = 64,
        problem_cache: Optional[ProblemCache] = None,
        profiler=NULL_PROFILER,
        retries: int = 0,
        task_timeout_s: Optional[float] = None,
    ):
        from repro.qaoa.optimizers import AdamOptimizer

        if max_bucket < 2:
            raise ValueError(
                f"max_bucket must be >= 2 (one graph = two rows), "
                f"got {max_bucket}"
            )
        self.p = p
        self.optimizer_iters = int(optimizer_iters)
        self.problem_cache = (
            problem_cache if problem_cache is not None else ProblemCache()
        )
        self.runner = QAOARunner(
            p=p,
            optimizer=AdamOptimizer(learning_rate=learning_rate),
            max_iters=optimizer_iters,
            problem_cache=self.problem_cache,
        )
        self.batched = bool(batched)
        self.max_bucket = int(max_bucket)
        self._batched_optimizer = BatchedAdamOptimizer(
            learning_rate=learning_rate
        )
        self._rng = ensure_rng(rng)
        # Per-graph seeds are derived before dispatch, so retried
        # evaluation tasks rerun with their original streams and the
        # sweep stays bit-reproducible.
        self.executor = (
            executor
            if executor is not None
            else ParallelExecutor(
                retries=retries, task_timeout_s=task_timeout_s
            )
        )
        self.profiler = profiler

    def evaluate_strategy(
        self,
        graphs: Sequence[Graph],
        strategy: InitializationStrategy,
        strategy_name: Optional[str] = None,
    ) -> EvaluationResult:
        """Compare ``strategy`` against random init on every graph."""
        if not graphs:
            raise DatasetError("no test graphs")
        name = strategy_name if strategy_name else strategy.name
        result = EvaluationResult(strategy_name=name)
        random_strategy = RandomInitialization()
        # Two seeds per graph, drawn in the same order the serial loop
        # used to call spawn_rng: (random arm, strategy arm) per graph.
        # Both engines consume the evaluator RNG identically, so
        # switching engines cannot change which experiment runs.
        with self.profiler.phase("prepare"):
            seeds = derive_task_seeds(self._rng, 2 * len(graphs))
        if self.batched:
            comparisons = self._evaluate_batched(
                graphs, random_strategy, strategy, seeds
            )
        else:
            comparisons = self._evaluate_serial(
                graphs, random_strategy, strategy, seeds
            )
        with self.profiler.phase("aggregate"):
            result.comparisons.extend(comparisons)
        return result

    def _evaluate_serial(
        self,
        graphs: Sequence[Graph],
        random_strategy: InitializationStrategy,
        strategy: InitializationStrategy,
        seeds: Sequence[int],
    ) -> List[WarmStartComparison]:
        """One task per graph; both arms inside the task."""
        payloads = [
            (
                self.runner,
                graph,
                random_strategy,
                strategy,
                seeds[2 * i],
                seeds[2 * i + 1],
            )
            for i, graph in enumerate(graphs)
        ]
        try:
            with self.profiler.phase("optimize"):
                return self.executor.map(
                    _comparison_task,
                    payloads,
                    labels=[graph.name for graph in graphs],
                )
        except ExecutionError as exc:
            names = ", ".join(failure.label for failure in exc.failures[:5])
            raise DatasetError(
                f"evaluation failed for {len(exc.failures)} graph(s): {names}"
            ) from exc

    def _evaluate_batched(
        self,
        graphs: Sequence[Graph],
        random_strategy: InitializationStrategy,
        strategy: InitializationStrategy,
        seeds: Sequence[int],
    ) -> List[WarmStartComparison]:
        """One task per size bucket; all instances in lock step."""
        with self.profiler.phase("prepare"):
            buckets = _size_buckets(graphs, self.max_bucket)
            payloads = []
            labels = []
            for bucket in buckets:
                entries: List[_BucketEntry] = [
                    (graphs[i], seeds[2 * i], seeds[2 * i + 1])
                    for i in bucket
                ]
                payloads.append(
                    (
                        entries,
                        random_strategy,
                        strategy,
                        self.p,
                        self._batched_optimizer,
                        self.optimizer_iters,
                        self.runner.tol,
                        self.problem_cache,
                    )
                )
                labels.append(
                    f"n={graphs[bucket[0]].num_nodes} x{len(bucket)}"
                )
        try:
            with self.profiler.phase("optimize"):
                results = self.executor.map(
                    _bucket_task, payloads, labels=labels
                )
        except ExecutionError as exc:
            names = ", ".join(failure.label for failure in exc.failures[:5])
            raise DatasetError(
                f"evaluation failed for {len(exc.failures)} bucket(s): {names}"
            ) from exc
        # Scatter bucket results back to the input graph order.
        comparisons: List[Optional[WarmStartComparison]] = [None] * len(graphs)
        for bucket, bucket_result in zip(buckets, results):
            for index, comparison in zip(bucket, bucket_result):
                comparisons[index] = comparison
        return comparisons  # type: ignore[return-value]

    def evaluate_model(
        self,
        graphs: Sequence[Graph],
        model: QAOAParameterPredictor,
        strategy_name: Optional[str] = None,
    ) -> EvaluationResult:
        """Compare a trained predictor against random init."""
        name = strategy_name if strategy_name else f"gnn_{model.arch}"
        return self.evaluate_strategy(graphs, model.as_initialization(), name)

    def evaluate_models(
        self,
        graphs: Sequence[Graph],
        models: Dict[str, QAOAParameterPredictor],
    ) -> Dict[str, EvaluationResult]:
        """Evaluate several models (the four-architecture comparison)."""
        return {
            name: self.evaluate_model(graphs, model, name)
            for name, model in models.items()
        }
