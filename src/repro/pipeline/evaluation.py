"""Warm-start evaluation: GNN initialization vs random initialization.

Reproduces the paper's experiment (Section 4): for each held-out test
graph, run QAOA once from a random initialization and once from the
model's predicted parameters under the same optimizer budget, and
compare the achieved approximation ratios. The headline quantity is the
per-graph *improvement* in percentage points,
``100 * (AR_gnn - AR_random)``, whose mean and standard deviation across
the test set form Table 1; the per-graph traces form Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import DatasetError, ExecutionError
from repro.gnn.predictor import QAOAParameterPredictor
from repro.graphs.graph import Graph
from repro.qaoa.initialization import (
    InitializationStrategy,
    RandomInitialization,
)
from repro.qaoa.runner import QAOARunner
from repro.runtime import ParallelExecutor, derive_task_seeds, task_rng
from repro.utils.logging import get_logger
from repro.utils.rng import RngLike, ensure_rng

logger = get_logger(__name__)


@dataclass
class WarmStartComparison:
    """Per-graph outcome of the random-vs-strategy comparison.

    Attributes
    ----------
    graph_name:
        Instance identifier.
    num_nodes, degree:
        Instance shape (degree = regular degree or max degree).
    random_ratio, strategy_ratio:
        Final approximation ratios from each initialization.
    random_initial_ratio, strategy_initial_ratio:
        Ratios *before* optimization (initialization quality itself).
    improvement:
        ``100 * (strategy_ratio - random_ratio)`` percentage points.
    """

    graph_name: str
    num_nodes: int
    degree: int
    random_ratio: float
    strategy_ratio: float
    random_initial_ratio: float
    strategy_initial_ratio: float

    @property
    def improvement(self) -> float:
        """Improvement over random init, in percentage points."""
        return 100.0 * (self.strategy_ratio - self.random_ratio)


@dataclass
class EvaluationResult:
    """Aggregate of a full test-set evaluation (one Table 1 cell).

    ``comparisons`` carries the per-graph traces used by Figure 5.
    """

    strategy_name: str
    comparisons: List[WarmStartComparison] = field(default_factory=list)

    @property
    def improvements(self) -> np.ndarray:
        """Per-graph improvements in percentage points."""
        return np.asarray([c.improvement for c in self.comparisons])

    @property
    def mean_improvement(self) -> float:
        """Mean improvement (Table 1 value)."""
        return float(self.improvements.mean()) if self.comparisons else 0.0

    @property
    def std_improvement(self) -> float:
        """Standard deviation of the improvement (Table 1 +/-)."""
        return float(self.improvements.std()) if self.comparisons else 0.0

    @property
    def random_ratios(self) -> np.ndarray:
        """Per-graph final AR from random initialization (Fig 5 orange)."""
        return np.asarray([c.random_ratio for c in self.comparisons])

    @property
    def strategy_ratios(self) -> np.ndarray:
        """Per-graph final AR from the strategy (Fig 5 blue)."""
        return np.asarray([c.strategy_ratio for c in self.comparisons])

    def win_rate(self) -> float:
        """Fraction of test graphs where the strategy is at least as good."""
        if not self.comparisons:
            return 0.0
        return float((self.improvements >= 0.0).mean())

    def summary(self) -> Dict[str, float]:
        """Dict form for tables and JSON export."""
        return {
            "strategy": self.strategy_name,
            "mean_improvement": self.mean_improvement,
            "std_improvement": self.std_improvement,
            "win_rate": self.win_rate(),
            "mean_random_ar": float(self.random_ratios.mean()),
            "mean_strategy_ar": float(self.strategy_ratios.mean()),
            "std_random_ar": float(self.random_ratios.std()),
            "std_strategy_ar": float(self.strategy_ratios.std()),
            "count": len(self.comparisons),
        }


def _comparison_task(payload) -> WarmStartComparison:
    """Run the paired random-vs-strategy comparison on one graph.

    Module-level (tuple payload) so the process backend can pickle it.
    The two per-arm seeds are pre-derived in graph order, so any backend
    reproduces the serial comparison bit for bit.
    """
    runner, graph, random_strategy, strategy, seed_random, seed_strategy = (
        payload
    )
    random_outcome = runner.run(graph, random_strategy, task_rng(seed_random))
    strategy_outcome = runner.run(graph, strategy, task_rng(seed_strategy))
    degree = graph.regular_degree()
    if degree is None:
        degree = graph.max_degree()
    return WarmStartComparison(
        graph_name=graph.name,
        num_nodes=graph.num_nodes,
        degree=degree,
        random_ratio=random_outcome.approximation_ratio,
        strategy_ratio=strategy_outcome.approximation_ratio,
        random_initial_ratio=random_outcome.initial_approximation_ratio,
        strategy_initial_ratio=strategy_outcome.initial_approximation_ratio,
    )


class WarmStartEvaluator:
    """Runs the paired random-vs-strategy comparison over test graphs.

    The *same* optimizer budget is used on both arms; the random arm's
    initial angles are drawn independently per graph from the shared RNG
    stream, so comparisons are paired but unbiased.

    ``executor`` fans the per-graph comparisons out through the parallel
    runtime (default: serial). Per-arm seeds are derived from the
    evaluator RNG in graph order before dispatch, so results are
    identical across backends and to the historical serial loop.
    """

    def __init__(
        self,
        p: int = 1,
        optimizer_iters: int = 60,
        learning_rate: float = 0.05,
        rng: RngLike = None,
        executor: Optional[ParallelExecutor] = None,
    ):
        from repro.qaoa.optimizers import AdamOptimizer

        self.p = p
        self.runner = QAOARunner(
            p=p,
            optimizer=AdamOptimizer(learning_rate=learning_rate),
            max_iters=optimizer_iters,
        )
        self._rng = ensure_rng(rng)
        self.executor = (
            executor if executor is not None else ParallelExecutor()
        )

    def evaluate_strategy(
        self,
        graphs: Sequence[Graph],
        strategy: InitializationStrategy,
        strategy_name: Optional[str] = None,
    ) -> EvaluationResult:
        """Compare ``strategy`` against random init on every graph."""
        if not graphs:
            raise DatasetError("no test graphs")
        name = strategy_name if strategy_name else strategy.name
        result = EvaluationResult(strategy_name=name)
        random_strategy = RandomInitialization()
        # Two seeds per graph, drawn in the same order the serial loop
        # used to call spawn_rng: (random arm, strategy arm) per graph.
        seeds = derive_task_seeds(self._rng, 2 * len(graphs))
        payloads = [
            (
                self.runner,
                graph,
                random_strategy,
                strategy,
                seeds[2 * i],
                seeds[2 * i + 1],
            )
            for i, graph in enumerate(graphs)
        ]
        try:
            comparisons = self.executor.map(
                _comparison_task,
                payloads,
                labels=[graph.name for graph in graphs],
            )
        except ExecutionError as exc:
            names = ", ".join(failure.label for failure in exc.failures[:5])
            raise DatasetError(
                f"evaluation failed for {len(exc.failures)} graph(s): {names}"
            ) from exc
        result.comparisons.extend(comparisons)
        return result

    def evaluate_model(
        self,
        graphs: Sequence[Graph],
        model: QAOAParameterPredictor,
        strategy_name: Optional[str] = None,
    ) -> EvaluationResult:
        """Compare a trained predictor against random init."""
        name = strategy_name if strategy_name else f"gnn_{model.arch}"
        return self.evaluate_strategy(graphs, model.as_initialization(), name)

    def evaluate_models(
        self,
        graphs: Sequence[Graph],
        models: Dict[str, QAOAParameterPredictor],
    ) -> Dict[str, EvaluationResult]:
        """Evaluate several models (the four-architecture comparison)."""
        return {
            name: self.evaluate_model(graphs, model, name)
            for name, model in models.items()
        }
