"""Deterministic fault tolerance primitives for the parallel runtime.

Two pieces, both plain frozen dataclasses so the process backend can
pickle them into workers:

- :class:`RetryPolicy` — how failed attempts are retried: the retry
  budget, exponential backoff, and *deterministic* jitter. The jitter
  for task ``i``'s ``k``-th retry is drawn from a fresh generator seeded
  by ``(policy.seed, i)``, so the schedule depends only on the policy
  and the task index — never on thread timing, attempt interleaving, or
  how much randomness the task itself consumed. Retried runs therefore
  stay bit-reproducible.
- :class:`FaultInjector` — deterministically injects worker failures
  (:class:`~repro.exceptions.InjectedFault`) and delays, either for an
  explicit set of task indices or for a pseudo-random fraction selected
  by hashing ``(seed, index)``. The injector is how the test suite (and
  the CI smoke job) proves the retry/backoff/checkpoint machinery works
  without depending on real flaky hardware.

Neither class keeps mutable state: every decision is a pure function of
``(config, task index, attempt number)``, which is what makes the fault
plan identical across the serial, thread, and process backends.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import ExecutionError, InjectedFault

#: Mixed into the injector's per-task hash so an injector and a retry
#: policy sharing one seed still draw independent streams.
_INJECTOR_STREAM = 0x5EED_FA17


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget plus a deterministic exponential-backoff schedule.

    Attributes
    ----------
    retries:
        Extra attempts per task after the first (0 disables retrying).
    backoff_base_s:
        Delay before the first retry; 0 retries immediately (the
        pre-existing executor behavior).
    backoff_multiplier:
        Growth factor between consecutive retries.
    backoff_max_s:
        Ceiling applied to every delay, jitter included.
    jitter:
        Fractional jitter: the ``k``-th delay is scaled by
        ``1 + jitter * u`` with ``u ~ U[0, 1)`` drawn from the task's
        own seed stream (see :meth:`delay_s`).
    seed:
        Root of the per-task jitter streams. Same seed, same task index
        -> same schedule, on every backend, every run.
    """

    retries: int = 0
    backoff_base_s: float = 0.0
    backoff_multiplier: float = 2.0
    backoff_max_s: float = 60.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if self.retries < 0:
            raise ExecutionError("retries must be >= 0")
        if self.backoff_base_s < 0:
            raise ExecutionError("backoff_base_s must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ExecutionError("backoff_multiplier must be >= 1")
        if self.backoff_max_s < 0:
            raise ExecutionError("backoff_max_s must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ExecutionError("jitter must be in [0, 1]")

    # ------------------------------------------------------------------
    def delay_s(self, index: int, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based) of task ``index``.

        Pure function of ``(seed, index, attempt)``: the jitter stream
        is re-derived on every call, so the value cannot depend on call
        order or on any other task's draws.
        """
        if attempt < 1:
            raise ExecutionError(f"attempt must be >= 1, got {attempt}")
        if self.backoff_base_s <= 0.0:
            return 0.0
        delay = self.backoff_base_s * self.backoff_multiplier ** (attempt - 1)
        if self.jitter > 0.0:
            rng = np.random.default_rng([self.seed, int(index)])
            u = float(rng.random(attempt)[attempt - 1])
            delay *= 1.0 + self.jitter * u
        return min(delay, self.backoff_max_s)

    def schedule(self, index: int) -> List[float]:
        """The full delay schedule a task would see if every attempt
        failed — one entry per retry."""
        return [self.delay_s(index, k) for k in range(1, self.retries + 1)]


#: The executor's default: no retries, no backoff.
NO_RETRY = RetryPolicy()


@dataclass(frozen=True)
class FaultInjector:
    """Deterministically inject failures and delays into worker tasks.

    The injector decides, per task index, how many leading attempts
    fail (each raising :class:`~repro.exceptions.InjectedFault`) and how
    long the task is artificially delayed. Selection is either explicit
    (``fail_tasks`` maps index -> number of failing attempts) or
    pseudo-random: a hash of ``(seed, index)`` picks ``failure_rate`` of
    all tasks, each failing its first ``attempts_per_failure`` attempts.

    With ``failure_rate=1.0, attempts_per_failure=1`` every task fails
    exactly once — the acceptance configuration proving a retried
    parallel run still matches serial output bit-for-bit.
    """

    fail_tasks: Optional[Dict[int, int]] = None
    failure_rate: float = 0.0
    attempts_per_failure: int = 1
    delay_s: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if not 0.0 <= self.failure_rate <= 1.0:
            raise ExecutionError("failure_rate must be in [0, 1]")
        if self.attempts_per_failure < 1:
            raise ExecutionError("attempts_per_failure must be >= 1")
        if self.delay_s < 0:
            raise ExecutionError("delay_s must be >= 0")
        if self.fail_tasks is not None:
            bad = {i: n for i, n in self.fail_tasks.items() if n < 0}
            if bad:
                raise ExecutionError(f"negative attempt counts: {bad}")

    # ------------------------------------------------------------------
    def failing_attempts(self, index: int) -> int:
        """How many leading attempts of task ``index`` must fail."""
        if self.fail_tasks is not None:
            return int(self.fail_tasks.get(int(index), 0))
        if self.failure_rate <= 0.0:
            return 0
        rng = np.random.default_rng(
            [self.seed, _INJECTOR_STREAM, int(index)]
        )
        if float(rng.random()) < self.failure_rate:
            return self.attempts_per_failure
        return 0

    def faulted_indices(self, num_tasks: int) -> Tuple[int, ...]:
        """All indices in ``range(num_tasks)`` the injector will fault."""
        return tuple(
            i for i in range(num_tasks) if self.failing_attempts(i) > 0
        )

    def before_attempt(self, index: int, label: str, attempt: int) -> None:
        """Executor hook: called at the top of every attempt.

        Sleeps the injected delay (faulted tasks only), then raises
        :class:`~repro.exceptions.InjectedFault` while the attempt is
        within the task's failing prefix.
        """
        fails = self.failing_attempts(index)
        if fails <= 0:
            return
        if self.delay_s > 0.0:
            time.sleep(self.delay_s)
        if attempt <= fails:
            raise InjectedFault(
                f"injected fault: task {index} ({label}), "
                f"attempt {attempt}/{fails} forced to fail"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A resolved fault/retry configuration for one executor run.

    Bundles what :func:`repro.runtime.executor._run_chunk` needs in a
    single picklable value: the retry policy, the optional injector, the
    per-task timeout, and the absolute monotonic deadline (``None`` when
    unbounded).
    """

    policy: RetryPolicy = field(default_factory=RetryPolicy)
    injector: Optional[FaultInjector] = None
    task_timeout_s: Optional[float] = None
    deadline: Optional[float] = None

    def time_left(self) -> Optional[float]:
        """Seconds until the deadline (``None`` when unbounded)."""
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()

    def expired(self) -> bool:
        """Whether the overall deadline has passed."""
        left = self.time_left()
        return left is not None and left <= 0.0
