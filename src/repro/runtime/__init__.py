"""Parallel execution runtime shared by the pipeline hot paths."""

from repro.runtime.executor import (
    BACKENDS,
    FAILURE_DEADLINE,
    FAILURE_ERROR,
    FAILURE_TIMEOUT,
    ParallelExecutor,
    TaskFailure,
    default_worker_count,
)
from repro.runtime.faults import (
    NO_RETRY,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
)
from repro.runtime.progress import ProgressReporter, ThroughputStats
from repro.runtime.seeding import derive_task_seeds, task_rng

__all__ = [
    "BACKENDS",
    "FAILURE_DEADLINE",
    "FAILURE_ERROR",
    "FAILURE_TIMEOUT",
    "ParallelExecutor",
    "TaskFailure",
    "default_worker_count",
    "NO_RETRY",
    "FaultInjector",
    "FaultPlan",
    "RetryPolicy",
    "ProgressReporter",
    "ThroughputStats",
    "derive_task_seeds",
    "task_rng",
]
