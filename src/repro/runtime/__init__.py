"""Parallel execution runtime shared by the pipeline hot paths."""

from repro.runtime.executor import (
    BACKENDS,
    ParallelExecutor,
    TaskFailure,
    default_worker_count,
)
from repro.runtime.progress import ProgressReporter, ThroughputStats
from repro.runtime.seeding import derive_task_seeds, task_rng

__all__ = [
    "BACKENDS",
    "ParallelExecutor",
    "TaskFailure",
    "default_worker_count",
    "ProgressReporter",
    "ThroughputStats",
    "derive_task_seeds",
    "task_rng",
]
