"""Throughput and progress reporting for parallel runs.

The executor reports task completions to a :class:`ProgressReporter`,
which logs periodic progress lines (count, percentage, tasks/sec, ETA)
and accumulates the final :class:`ThroughputStats` that benchmark
harnesses persist into ``BENCH_*.json`` trajectories.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.utils.logging import get_logger

logger = get_logger(__name__)


@dataclass
class ThroughputStats:
    """Aggregate throughput of one executor run.

    Attributes
    ----------
    total_tasks, completed, failed:
        Task counts; ``completed`` includes tasks that eventually
        succeeded after retries, ``failed`` those that exhausted them.
    retried:
        Extra attempts beyond the first, summed over all tasks — the
        price paid to the fault-tolerance machinery.
    timed_out:
        Tasks whose *final* attempt exceeded the per-task budget.
    wall_time:
        Seconds from first submission to last completion.
    tasks_per_second:
        ``completed / wall_time`` (0 when nothing completed).
    """

    total_tasks: int = 0
    completed: int = 0
    failed: int = 0
    retried: int = 0
    timed_out: int = 0
    wall_time: float = 0.0

    @property
    def tasks_per_second(self) -> float:
        if self.wall_time <= 0.0 or self.completed == 0:
            return 0.0
        return self.completed / self.wall_time

    def as_dict(self) -> Dict[str, float]:
        """JSON-serializable form for benchmark trajectories."""
        return {
            "total_tasks": self.total_tasks,
            "completed": self.completed,
            "failed": self.failed,
            "retried": self.retried,
            "timed_out": self.timed_out,
            "wall_time": self.wall_time,
            "tasks_per_second": self.tasks_per_second,
        }


@dataclass
class ProgressReporter:
    """Logs progress every ``report_every`` completions.

    ``report_every=0`` disables periodic logging but still tracks the
    final stats. ``on_progress`` (if given) is invoked after every
    completion with ``(done, total)`` — hook for CLI progress bars.
    """

    total_tasks: int
    report_every: int = 0
    on_progress: Optional[Callable[[int, int], None]] = None
    _done: int = field(default=0, init=False)
    _failed: int = field(default=0, init=False)
    _retried: int = field(default=0, init=False)
    _timed_out: int = field(default=0, init=False)
    _start: Optional[float] = field(default=None, init=False)
    _elapsed: float = field(default=0.0, init=False)

    def start(self) -> None:
        """Mark the beginning of the run."""
        self._start = time.perf_counter()

    def task_done(
        self,
        failed: bool = False,
        attempts: int = 1,
        timed_out: bool = False,
    ) -> None:
        """Record one task completion (successful or failed).

        ``attempts`` is the number of attempts the task consumed (extra
        ones count as retries); ``timed_out`` marks failures whose final
        attempt blew the per-task budget.
        """
        if self._start is None:
            self.start()
        self._done += 1
        self._retried += max(0, attempts - 1)
        if timed_out:
            self._timed_out += 1
        if failed:
            self._failed += 1
        self._elapsed = time.perf_counter() - self._start
        if self.on_progress is not None:
            self.on_progress(self._done, self.total_tasks)
        if self.report_every > 0 and self._done % self.report_every == 0:
            rate = self._done / self._elapsed if self._elapsed > 0 else 0.0
            remaining = self.total_tasks - self._done
            eta = remaining / rate if rate > 0 else float("inf")
            logger.info(
                "progress %d/%d (%.0f%%) — %.1f tasks/s, eta %.1fs",
                self._done,
                self.total_tasks,
                100.0 * self._done / max(1, self.total_tasks),
                rate,
                eta,
            )

    def stats(self) -> ThroughputStats:
        """Final (or running) throughput snapshot."""
        return ThroughputStats(
            total_tasks=self.total_tasks,
            completed=self._done - self._failed,
            failed=self._failed,
            retried=self._retried,
            timed_out=self._timed_out,
            wall_time=self._elapsed,
        )
