"""Parallel execution runtime: serial / thread / process backends.

:class:`ParallelExecutor` is the one fan-out primitive the pipeline hot
paths (dataset labeling, warm-start evaluation, benchmarks) share. It
provides:

- **Backends.** ``serial`` (a plain loop — the reference semantics),
  ``thread`` (``ThreadPoolExecutor`` — cheap, shares memory, wins when
  the task releases the GIL or is I/O bound), and ``process``
  (``ProcessPoolExecutor`` — true CPU parallelism; task functions and
  arguments must be picklable module-level callables).
- **Chunked dispatch.** Tasks are grouped into chunks to amortize
  submission and IPC overhead; results are always returned in input
  order regardless of completion order.
- **Determinism.** The executor itself introduces no randomness; pair
  it with :func:`repro.runtime.seeding.derive_task_seeds` so each task
  owns an independent RNG stream and parallel output is bit-identical
  to serial.
- **Fault tolerance.** Worker exceptions are caught per task and
  retried under a :class:`~repro.runtime.faults.RetryPolicy`
  (exponential backoff with deterministic per-task jitter). Tasks can
  carry a wall-clock budget (``task_timeout_s``) and the whole run an
  overall ``deadline_s``; a :class:`~repro.runtime.faults.FaultInjector`
  can deterministically force failures/delays for testing. Exhausted
  tasks are either raised as one aggregated
  :class:`~repro.exceptions.ExecutionError` (``error_mode="raise"``) or
  returned in-place as :class:`TaskFailure` records
  (``error_mode="collect"``).
- **Reporting.** Every ``map`` records wall time, throughput, retries,
  and timeouts in ``last_report`` (a
  :class:`~repro.runtime.progress.ThroughputStats`) for the benchmark
  trajectories.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.exceptions import ExecutionError, TaskTimeout
from repro.runtime.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.runtime.progress import ProgressReporter, ThroughputStats
from repro.utils.logging import get_logger

logger = get_logger(__name__)

BACKENDS = ("serial", "thread", "process")

#: ``TaskFailure.kind`` values.
FAILURE_ERROR = "error"
FAILURE_TIMEOUT = "timeout"
FAILURE_DEADLINE = "deadline"


@dataclass(frozen=True)
class TaskFailure:
    """One task that exhausted its retry budget (or ran out of time).

    Attributes
    ----------
    index:
        Position of the task in the input sequence.
    label:
        Human-readable task label (e.g. a graph name).
    attempts:
        Number of attempts made (0 when the overall deadline expired
        before the task ever ran).
    error:
        ``repr`` of the final exception.
    traceback:
        Formatted traceback of the final exception.
    kind:
        ``"error"`` (the task raised), ``"timeout"`` (the final attempt
        exceeded ``task_timeout_s``), or ``"deadline"`` (the run's
        overall deadline expired before the task could finish).
    """

    index: int
    label: str
    attempts: int
    error: str
    traceback: str
    kind: str = FAILURE_ERROR

    def __str__(self) -> str:
        return f"{self.label} (task {self.index}): {self.error}"


def _call_with_timeout(
    fn: Callable[[Any], Any], item: Any, timeout_s: Optional[float]
) -> Any:
    """Run ``fn(item)``, raising :class:`TaskTimeout` past ``timeout_s``.

    The budgeted call runs in a daemon helper thread; on timeout the
    runaway attempt keeps executing in the background (Python offers no
    safe preemption) but its eventual result is discarded, and the task
    is handed back to the retry machinery immediately.
    """
    if timeout_s is None:
        return fn(item)
    outcome: dict = {}

    def runner() -> None:
        try:
            outcome["value"] = fn(item)
        except BaseException as exc:  # noqa: BLE001 — re-raised below
            outcome["error"] = exc

    worker = threading.Thread(
        target=runner, name="repro-task-timeout", daemon=True
    )
    worker.start()
    worker.join(timeout_s)
    if worker.is_alive():
        raise TaskTimeout(f"task exceeded its {timeout_s}s budget")
    if "error" in outcome:
        raise outcome["error"]
    return outcome["value"]


def _deadline_failure(index: int, label: str, attempts: int) -> TaskFailure:
    return TaskFailure(
        index=index,
        label=label,
        attempts=attempts,
        error="DeadlineExceeded('overall deadline expired')",
        traceback="",
        kind=FAILURE_DEADLINE,
    )


def _run_chunk(
    fn: Callable[[Any], Any],
    chunk: Sequence[Tuple[int, str, Any]],
    plan: FaultPlan,
) -> List[Tuple[int, bool, Any, int]]:
    """Run one chunk of ``(index, label, item)`` tasks in this worker.

    Module-level so the process backend can pickle it. Returns
    ``(index, ok, result_or_TaskFailure, attempts)`` quadruples.
    """
    out: List[Tuple[int, bool, Any, int]] = []
    for position, (index, label, item) in enumerate(chunk):
        if plan.expired():
            # Deadline hit mid-chunk: cut the remaining tasks without
            # running them.
            for rest_index, rest_label, _ in chunk[position:]:
                out.append(
                    (
                        rest_index,
                        False,
                        _deadline_failure(rest_index, rest_label, 0),
                        0,
                    )
                )
            break
        attempts = 0
        while True:
            attempts += 1
            try:
                if plan.injector is not None:
                    plan.injector.before_attempt(index, label, attempts)
                out.append(
                    (
                        index,
                        True,
                        _call_with_timeout(fn, item, plan.task_timeout_s),
                        attempts,
                    )
                )
                break
            except Exception as exc:  # noqa: BLE001 — captured per task
                timed_out = isinstance(exc, TaskTimeout)
                if attempts <= plan.policy.retries and not plan.expired():
                    delay = plan.policy.delay_s(index, attempts)
                    if delay > 0.0:
                        left = plan.time_left()
                        if left is not None:
                            delay = min(delay, max(0.0, left))
                        time.sleep(delay)
                    if not plan.expired():
                        continue
                out.append(
                    (
                        index,
                        False,
                        TaskFailure(
                            index=index,
                            label=label,
                            attempts=attempts,
                            error=repr(exc),
                            traceback=traceback.format_exc(),
                            kind=(
                                FAILURE_TIMEOUT
                                if timed_out
                                else FAILURE_ERROR
                            ),
                        ),
                        attempts,
                    )
                )
                break
    return out


def default_worker_count(backend: str) -> int:
    """Sensible worker default: all cores for pools, 1 for serial."""
    if backend == "serial":
        return 1
    return max(1, os.cpu_count() or 1)


class ParallelExecutor:
    """Ordered, chunked, fault-tolerant map over a task list.

    Parameters
    ----------
    backend:
        One of ``"serial"``, ``"thread"``, ``"process"``.
    max_workers:
        Pool size; defaults to the machine's core count (1 for serial).
    chunk_size:
        Tasks per dispatch unit. Defaults to ``ceil(n / (4 * workers))``
        so each worker sees ~4 chunks — small enough to balance load,
        large enough to amortize IPC.
    retries:
        Extra attempts per task before it is recorded as failed.
        Shorthand for ``retry_policy=RetryPolicy(retries=...)``.
    retry_policy:
        Full :class:`~repro.runtime.faults.RetryPolicy` (backoff,
        deterministic jitter). Overrides ``retries`` when given.
    error_mode:
        ``"raise"`` aggregates failures into one
        :class:`~repro.exceptions.ExecutionError` after the run;
        ``"collect"`` leaves :class:`TaskFailure` records in the result
        list at the failing positions.
    task_timeout_s:
        Per-attempt wall-clock budget; an attempt past it counts as a
        (retryable) failure of kind ``"timeout"``.
    deadline_s:
        Overall budget for one ``map`` call. Tasks that cannot start
        (or finish retrying) before it expires fail with kind
        ``"deadline"``; already-running attempts are allowed to finish.
    fault_injector:
        Optional :class:`~repro.runtime.faults.FaultInjector` that
        deterministically forces failures/delays (testing only).
    report_every:
        Log a progress line every N completions (0 disables).
    """

    def __init__(
        self,
        backend: str = "serial",
        max_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        retries: int = 0,
        error_mode: str = "raise",
        report_every: int = 0,
        retry_policy: Optional[RetryPolicy] = None,
        task_timeout_s: Optional[float] = None,
        deadline_s: Optional[float] = None,
        fault_injector: Optional[FaultInjector] = None,
    ):
        if backend not in BACKENDS:
            raise ExecutionError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        if error_mode not in ("raise", "collect"):
            raise ExecutionError(
                f"unknown error_mode {error_mode!r}; "
                "expected 'raise' or 'collect'"
            )
        if max_workers is not None and max_workers < 1:
            raise ExecutionError("max_workers must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ExecutionError("chunk_size must be >= 1")
        if retries < 0:
            raise ExecutionError("retries must be >= 0")
        if task_timeout_s is not None and task_timeout_s <= 0:
            raise ExecutionError("task_timeout_s must be positive")
        if deadline_s is not None and deadline_s <= 0:
            raise ExecutionError("deadline_s must be positive")
        self.backend = backend
        self.max_workers = (
            int(max_workers)
            if max_workers is not None
            else default_worker_count(backend)
        )
        self.chunk_size = chunk_size
        self.retry_policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy(retries=int(retries))
        )
        self.error_mode = error_mode
        self.task_timeout_s = task_timeout_s
        self.deadline_s = deadline_s
        self.fault_injector = fault_injector
        self.report_every = int(report_every)
        self.last_report: ThroughputStats = ThroughputStats()

    @property
    def retries(self) -> int:
        """Retry budget (from the policy) — kept for back-compat."""
        return self.retry_policy.retries

    # ------------------------------------------------------------------
    def map(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        labels: Optional[Sequence[str]] = None,
        on_progress: Optional[Callable[[int, int], None]] = None,
    ) -> List[Any]:
        """Apply ``fn`` to every item, preserving input order.

        ``labels`` (parallel to ``items``) name tasks in error reports.
        With the process backend, ``fn`` and the items must be
        picklable. Returns one result per item; failing positions hold
        :class:`TaskFailure` records when ``error_mode="collect"``.
        """
        items = list(items)
        n = len(items)
        if labels is None:
            labels = [f"task-{i}" for i in range(n)]
        else:
            labels = [str(label) for label in labels]
            if len(labels) != n:
                raise ExecutionError(
                    f"labels length {len(labels)} != items length {n}"
                )
        plan = FaultPlan(
            policy=self.retry_policy,
            injector=self.fault_injector,
            task_timeout_s=self.task_timeout_s,
            deadline=(
                time.monotonic() + self.deadline_s
                if self.deadline_s is not None
                else None
            ),
        )
        reporter = ProgressReporter(
            total_tasks=n,
            report_every=self.report_every,
            on_progress=on_progress,
        )
        reporter.start()
        results: List[Any] = [None] * n
        failures: List[TaskFailure] = []

        def consume(chunk_output: List[Tuple[int, bool, Any, int]]) -> None:
            for index, ok, value, attempts in chunk_output:
                results[index] = value
                if not ok:
                    failures.append(value)
                reporter.task_done(
                    failed=not ok,
                    attempts=attempts,
                    timed_out=not ok and value.kind == FAILURE_TIMEOUT,
                )

        chunks = self._chunk([(i, labels[i], items[i]) for i in range(n)])
        if self.backend == "serial" or n == 0 or self.max_workers == 1:
            for chunk in chunks:
                consume(_run_chunk(fn, chunk, plan))
        else:
            pool_cls = (
                ThreadPoolExecutor
                if self.backend == "thread"
                else ProcessPoolExecutor
            )
            with pool_cls(max_workers=self.max_workers) as pool:
                pending = {
                    pool.submit(_run_chunk, fn, chunk, plan): chunk
                    for chunk in chunks
                }
                while pending:
                    done, _ = wait(
                        set(pending),
                        timeout=plan.time_left(),
                        return_when=FIRST_COMPLETED,
                    )
                    if not done and plan.expired():
                        # Deadline expired with chunks still queued or
                        # running: cancel what has not started; chunks
                        # already running finish and cut their own
                        # remaining tasks (the plan travels with them).
                        for future in list(pending):
                            if future.cancel():
                                chunk = pending.pop(future)
                                consume(
                                    [
                                        (
                                            index,
                                            False,
                                            _deadline_failure(
                                                index, label, 0
                                            ),
                                            0,
                                        )
                                        for index, label, _ in chunk
                                    ]
                                )
                        continue
                    for future in done:
                        pending.pop(future)
                        consume(future.result())

        self.last_report = reporter.stats()
        if failures and self.error_mode == "raise":
            failures.sort(key=lambda f: f.index)
            summary = "; ".join(str(f) for f in failures[:5])
            if len(failures) > 5:
                summary += f"; ... ({len(failures) - 5} more)"
            raise ExecutionError(
                f"{len(failures)}/{n} tasks failed: {summary}",
                failures=failures,
            )
        return results

    # ------------------------------------------------------------------
    def _chunk(
        self, tasks: List[Tuple[int, str, Any]]
    ) -> List[List[Tuple[int, str, Any]]]:
        n = len(tasks)
        if n == 0:
            return []
        size = self.chunk_size
        if size is None:
            size = max(1, -(-n // (4 * self.max_workers)))
        return [tasks[i : i + size] for i in range(0, n, size)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParallelExecutor(backend={self.backend!r}, "
            f"max_workers={self.max_workers})"
        )
