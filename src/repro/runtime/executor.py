"""Parallel execution runtime: serial / thread / process backends.

:class:`ParallelExecutor` is the one fan-out primitive the pipeline hot
paths (dataset labeling, warm-start evaluation, benchmarks) share. It
provides:

- **Backends.** ``serial`` (a plain loop — the reference semantics),
  ``thread`` (``ThreadPoolExecutor`` — cheap, shares memory, wins when
  the task releases the GIL or is I/O bound), and ``process``
  (``ProcessPoolExecutor`` — true CPU parallelism; task functions and
  arguments must be picklable module-level callables).
- **Chunked dispatch.** Tasks are grouped into chunks to amortize
  submission and IPC overhead; results are always returned in input
  order regardless of completion order.
- **Determinism.** The executor itself introduces no randomness; pair
  it with :func:`repro.runtime.seeding.derive_task_seeds` so each task
  owns an independent RNG stream and parallel output is bit-identical
  to serial.
- **Error capture.** Worker exceptions are caught per task, retried up
  to ``retries`` extra attempts, and either raised as one aggregated
  :class:`~repro.exceptions.ExecutionError` (``error_mode="raise"``) or
  returned in-place as :class:`TaskFailure` records
  (``error_mode="collect"``).
- **Reporting.** Every ``map`` records wall time and throughput in
  ``last_report`` (a :class:`~repro.runtime.progress.ThroughputStats`)
  for the benchmark trajectories.
"""

from __future__ import annotations

import os
import traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.exceptions import ExecutionError
from repro.runtime.progress import ProgressReporter, ThroughputStats
from repro.utils.logging import get_logger

logger = get_logger(__name__)

BACKENDS = ("serial", "thread", "process")


@dataclass(frozen=True)
class TaskFailure:
    """One task that exhausted its retry budget.

    Attributes
    ----------
    index:
        Position of the task in the input sequence.
    label:
        Human-readable task label (e.g. a graph name).
    attempts:
        Number of attempts made (``1 + retries``).
    error:
        ``repr`` of the final exception.
    traceback:
        Formatted traceback of the final exception.
    """

    index: int
    label: str
    attempts: int
    error: str
    traceback: str

    def __str__(self) -> str:
        return f"{self.label} (task {self.index}): {self.error}"


def _run_chunk(
    fn: Callable[[Any], Any],
    chunk: Sequence[Tuple[int, str, Any]],
    retries: int,
) -> List[Tuple[int, bool, Any]]:
    """Run one chunk of ``(index, label, item)`` tasks in this worker.

    Module-level so the process backend can pickle it. Returns
    ``(index, ok, result_or_TaskFailure)`` triples.
    """
    out: List[Tuple[int, bool, Any]] = []
    for index, label, item in chunk:
        attempts = 0
        while True:
            attempts += 1
            try:
                out.append((index, True, fn(item)))
                break
            except Exception as exc:  # noqa: BLE001 — captured per task
                if attempts <= retries:
                    continue
                out.append(
                    (
                        index,
                        False,
                        TaskFailure(
                            index=index,
                            label=label,
                            attempts=attempts,
                            error=repr(exc),
                            traceback=traceback.format_exc(),
                        ),
                    )
                )
                break
    return out


def default_worker_count(backend: str) -> int:
    """Sensible worker default: all cores for pools, 1 for serial."""
    if backend == "serial":
        return 1
    return max(1, os.cpu_count() or 1)


class ParallelExecutor:
    """Ordered, chunked, fault-capturing map over a task list.

    Parameters
    ----------
    backend:
        One of ``"serial"``, ``"thread"``, ``"process"``.
    max_workers:
        Pool size; defaults to the machine's core count (1 for serial).
    chunk_size:
        Tasks per dispatch unit. Defaults to ``ceil(n / (4 * workers))``
        so each worker sees ~4 chunks — small enough to balance load,
        large enough to amortize IPC.
    retries:
        Extra attempts per task before it is recorded as failed.
    error_mode:
        ``"raise"`` aggregates failures into one
        :class:`~repro.exceptions.ExecutionError` after the run;
        ``"collect"`` leaves :class:`TaskFailure` records in the result
        list at the failing positions.
    report_every:
        Log a progress line every N completions (0 disables).
    """

    def __init__(
        self,
        backend: str = "serial",
        max_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        retries: int = 0,
        error_mode: str = "raise",
        report_every: int = 0,
    ):
        if backend not in BACKENDS:
            raise ExecutionError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        if error_mode not in ("raise", "collect"):
            raise ExecutionError(
                f"unknown error_mode {error_mode!r}; "
                "expected 'raise' or 'collect'"
            )
        if max_workers is not None and max_workers < 1:
            raise ExecutionError("max_workers must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ExecutionError("chunk_size must be >= 1")
        if retries < 0:
            raise ExecutionError("retries must be >= 0")
        self.backend = backend
        self.max_workers = (
            int(max_workers)
            if max_workers is not None
            else default_worker_count(backend)
        )
        self.chunk_size = chunk_size
        self.retries = int(retries)
        self.error_mode = error_mode
        self.report_every = int(report_every)
        self.last_report: ThroughputStats = ThroughputStats()

    # ------------------------------------------------------------------
    def map(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        labels: Optional[Sequence[str]] = None,
        on_progress: Optional[Callable[[int, int], None]] = None,
    ) -> List[Any]:
        """Apply ``fn`` to every item, preserving input order.

        ``labels`` (parallel to ``items``) name tasks in error reports.
        With the process backend, ``fn`` and the items must be
        picklable. Returns one result per item; failing positions hold
        :class:`TaskFailure` records when ``error_mode="collect"``.
        """
        items = list(items)
        n = len(items)
        if labels is None:
            labels = [f"task-{i}" for i in range(n)]
        else:
            labels = [str(label) for label in labels]
            if len(labels) != n:
                raise ExecutionError(
                    f"labels length {len(labels)} != items length {n}"
                )
        reporter = ProgressReporter(
            total_tasks=n,
            report_every=self.report_every,
            on_progress=on_progress,
        )
        reporter.start()
        results: List[Any] = [None] * n
        failures: List[TaskFailure] = []

        def consume(chunk_output: List[Tuple[int, bool, Any]]) -> None:
            for index, ok, value in chunk_output:
                results[index] = value
                if not ok:
                    failures.append(value)
                reporter.task_done(failed=not ok)

        chunks = self._chunk([(i, labels[i], items[i]) for i in range(n)])
        if self.backend == "serial" or n == 0 or self.max_workers == 1:
            for chunk in chunks:
                consume(_run_chunk(fn, chunk, self.retries))
        else:
            pool_cls = (
                ThreadPoolExecutor
                if self.backend == "thread"
                else ProcessPoolExecutor
            )
            with pool_cls(max_workers=self.max_workers) as pool:
                pending = {
                    pool.submit(_run_chunk, fn, chunk, self.retries)
                    for chunk in chunks
                }
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        consume(future.result())

        self.last_report = reporter.stats()
        if failures and self.error_mode == "raise":
            failures.sort(key=lambda f: f.index)
            summary = "; ".join(str(f) for f in failures[:5])
            if len(failures) > 5:
                summary += f"; ... ({len(failures) - 5} more)"
            raise ExecutionError(
                f"{len(failures)}/{n} tasks failed: {summary}",
                failures=failures,
            )
        return results

    # ------------------------------------------------------------------
    def _chunk(
        self, tasks: List[Tuple[int, str, Any]]
    ) -> List[List[Tuple[int, str, Any]]]:
        n = len(tasks)
        if n == 0:
            return []
        size = self.chunk_size
        if size is None:
            size = max(1, -(-n // (4 * self.max_workers)))
        return [tasks[i : i + size] for i in range(0, n, size)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParallelExecutor(backend={self.backend!r}, "
            f"max_workers={self.max_workers})"
        )
