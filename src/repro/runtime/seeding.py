"""Deterministic per-task RNG seeding for parallel execution.

The labeling and evaluation pipelines used to thread a single
:class:`numpy.random.Generator` through a serial loop, which makes the
output depend on iteration *order* — a property that cannot survive a
parallel fan-out. These helpers replace the shared stream with a list of
independent child seeds derived up front from the parent generator (the
same derivation :func:`repro.utils.rng.spawn_rng` performs, applied once
per task). Each task then builds its own generator from its seed, so

- serial and parallel execution see exactly the same per-task streams,
  making parallel output bit-identical to serial, and
- task ``i``'s randomness is independent of how many draws task ``j``
  performs, so adding randomness to one task never perturbs another.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.utils.rng import RngLike, ensure_rng

#: Upper bound (exclusive) for derived seeds — matches ``spawn_rng``.
_SEED_BOUND = 2**63 - 1


def derive_task_seeds(rng: RngLike, num_tasks: int) -> List[int]:
    """Draw ``num_tasks`` independent child seeds from ``rng``.

    The draws consume the parent stream in task order, exactly as a
    serial loop of ``spawn_rng`` calls would, so switching an existing
    serial pipeline to pre-derived seeds preserves its output.
    """
    if num_tasks < 0:
        raise ValueError(f"num_tasks must be >= 0, got {num_tasks}")
    generator = ensure_rng(rng)
    return [
        int(generator.integers(0, _SEED_BOUND)) for _ in range(num_tasks)
    ]


def task_rng(seed: int) -> np.random.Generator:
    """The per-task generator for a seed from :func:`derive_task_seeds`."""
    return np.random.default_rng(int(seed))
