"""Shared utilities: seeded RNG plumbing, logging, serialization."""

from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.serialization import load_json, save_json
from repro.utils.logging import get_logger

__all__ = ["ensure_rng", "spawn_rng", "load_json", "save_json", "get_logger"]
