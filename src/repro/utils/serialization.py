"""JSON serialization helpers tolerant of numpy scalar/array values.

Writes are atomic: content goes to a temporary file in the destination
directory and is moved into place with :func:`os.replace`, so an
interrupted ``generate``/``train`` can never leave a truncated JSON
behind — the old file (or no file) survives intact.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Union

import numpy as np

PathLike = Union[str, Path]


def atomic_write_text(path: PathLike, text: str) -> None:
    """Write ``text`` to ``path`` atomically (same-directory temp + replace)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w") as temp_file:
            temp_file.write(text)
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


class _NumpyEncoder(json.JSONEncoder):
    """JSON encoder that downcasts numpy scalars and arrays to builtins."""

    def default(self, obj: Any) -> Any:
        if isinstance(obj, np.integer):
            return int(obj)
        if isinstance(obj, np.floating):
            return float(obj)
        if isinstance(obj, np.bool_):
            return bool(obj)
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        return super().default(obj)


def save_json(data: Any, path: PathLike, indent: int = 2) -> None:
    """Write ``data`` to ``path`` as JSON, atomically.

    Serialization happens before anything touches ``path``, so an
    encoding error (or a crash mid-write) leaves any existing file
    untouched.
    """
    text = json.dumps(data, cls=_NumpyEncoder, indent=indent)
    atomic_write_text(path, text)


def load_json(path: PathLike) -> Any:
    """Read JSON content from ``path``."""
    with Path(path).open() as handle:
        return json.load(handle)
