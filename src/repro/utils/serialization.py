"""JSON serialization helpers tolerant of numpy scalar/array values."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Union

import numpy as np

PathLike = Union[str, Path]


class _NumpyEncoder(json.JSONEncoder):
    """JSON encoder that downcasts numpy scalars and arrays to builtins."""

    def default(self, obj: Any) -> Any:
        if isinstance(obj, np.integer):
            return int(obj)
        if isinstance(obj, np.floating):
            return float(obj)
        if isinstance(obj, np.bool_):
            return bool(obj)
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        return super().default(obj)


def save_json(data: Any, path: PathLike, indent: int = 2) -> None:
    """Write ``data`` to ``path`` as JSON, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump(data, handle, cls=_NumpyEncoder, indent=indent)


def load_json(path: PathLike) -> Any:
    """Read JSON content from ``path``."""
    with Path(path).open() as handle:
        return json.load(handle)
