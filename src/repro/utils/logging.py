"""Minimal logging setup shared across the library."""

from __future__ import annotations

import logging

_FORMAT = "%(asctime)s %(name)s %(levelname)s %(message)s"


def get_logger(name: str) -> logging.Logger:
    """Return a library logger; handlers are configured once per process."""
    logger = logging.getLogger(name)
    root = logging.getLogger("repro")
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT))
        root.addHandler(handler)
        root.setLevel(logging.INFO)
        root.propagate = False
    return logger
