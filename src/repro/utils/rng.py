"""Random-number-generator plumbing.

Every stochastic component in the library accepts an optional ``rng``
argument. These helpers normalize what callers may pass (``None``, an int
seed, or an existing :class:`numpy.random.Generator`) into a Generator, and
derive independent child generators for subcomponents so that experiments
are reproducible end to end from a single seed.
"""

from __future__ import annotations

from typing import Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    ``None`` yields a fresh nondeterministic generator, an ``int`` seeds a
    new generator, and an existing generator is returned unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    if isinstance(rng, np.random.Generator):
        return rng
    raise TypeError(f"cannot interpret {type(rng).__name__} as an RNG")


def spawn_rng(rng: np.random.Generator) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    Used to hand separate streams to subcomponents (dataset generation,
    model init, optimizer noise) so that adding randomness in one place
    does not perturb the others.
    """
    seed = int(rng.integers(0, 2**63 - 1))
    return np.random.default_rng(seed)
