"""Exact Max-Cut solvers.

The paper grades every QAOA run against "the optimal solutions derived
from a brute-force search approach". For the paper's sizes (n <= 15) the
vectorized enumeration in :func:`brute_force_maxcut` is instantaneous; a
low-memory chunked variant covers slightly larger instances.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.graph import Graph
from repro.maxcut.problem import MaxCutSolution, all_cut_values


def brute_force_maxcut(graph: Graph) -> MaxCutSolution:
    """Enumerate all 2^n cuts and return the optimum (n <= 26)."""
    values = all_cut_values(graph)
    best = int(values.argmax())
    return MaxCutSolution(assignment=best, value=float(values[best]), optimal=True)


def brute_force_maxcut_chunked(
    graph: Graph, chunk_bits: int = 20
) -> MaxCutSolution:
    """Brute force with bounded memory: scan bitstrings in 2^chunk_bits blocks.

    Exists for instances past the dense-diagonal budget; identical result
    to :func:`brute_force_maxcut`.
    """
    n = graph.num_nodes
    if n > 32:
        raise GraphError(f"chunked brute force infeasible for n={n}")
    edges = graph.edge_array()
    weights = graph.weight_array()
    chunk = 1 << min(chunk_bits, n)
    best_value = -np.inf
    best_state = 0
    for start in range(0, 1 << n, chunk):
        states = np.arange(start, min(start + chunk, 1 << n), dtype=np.int64)
        values = np.zeros(states.shape[0], dtype=np.float64)
        for (u, v), w in zip(edges, weights):
            values += w * (((states >> int(u)) & 1) ^ ((states >> int(v)) & 1))
        index = int(values.argmax())
        if values[index] > best_value:
            best_value = float(values[index])
            best_state = int(states[index])
    return MaxCutSolution(assignment=best_state, value=best_value, optimal=True)


def count_optimal_cuts(graph: Graph) -> int:
    """Number of bitstrings achieving the optimal cut value.

    Always even for graphs with edges (complementing a cut preserves its
    value), which is a useful invariant for tests.
    """
    values = all_cut_values(graph)
    return int((values == values.max()).sum())
