"""Max-Cut substrate: problem wrapper, exact and heuristic solvers."""

from repro.maxcut.problem import (
    MaxCutProblem,
    MaxCutSolution,
    all_cut_values,
    assignment_to_bits,
    cut_value,
)
from repro.maxcut.cache import ProblemCache, graph_signature
from repro.maxcut.bruteforce import (
    brute_force_maxcut,
    brute_force_maxcut_chunked,
    count_optimal_cuts,
)
from repro.maxcut.greedy import greedy_maxcut, local_search_maxcut, random_cut
from repro.maxcut.goemans_williamson import (
    GWResult,
    goemans_williamson,
    round_embedding,
    solve_lowrank_sdp,
)

__all__ = [
    "MaxCutProblem",
    "MaxCutSolution",
    "all_cut_values",
    "assignment_to_bits",
    "cut_value",
    "ProblemCache",
    "graph_signature",
    "brute_force_maxcut",
    "brute_force_maxcut_chunked",
    "count_optimal_cuts",
    "greedy_maxcut",
    "local_search_maxcut",
    "random_cut",
    "GWResult",
    "goemans_williamson",
    "round_embedding",
    "solve_lowrank_sdp",
]
