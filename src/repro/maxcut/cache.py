"""Shared :class:`MaxCutProblem` cache for evaluation sweeps.

The warm-start experiment solves the *same* Max-Cut instance many times:
once per arm of a :class:`~repro.pipeline.evaluation.WarmStartComparison`
(random vs. warm start) and once per architecture in the
four-architecture comparison. Each solve only needs two expensive,
instance-level artifacts — the ``2^n`` cut-value diagonal and the
brute-force optimum — and both are pure functions of the graph, so they
belong in a cache shared across the whole sweep rather than being
recomputed per run.

Entries are bucketed by the 1-WL canonical hash
(:func:`repro.graphs.canonical.wl_canonical_hash`), the same
isomorphism-class key the serving cache uses, so sweep statistics can
report how many distinct structure classes a test set contains. Within
a bucket, entries are guarded by the *exact* labeled structure
``(num_nodes, edges, weights)``: the cut-value diagonal indexes
bitstrings by node label, so it is **not** invariant under relabeling
(and 1-WL cannot even separate all non-isomorphic regular graphs), which
means two WL-equal graphs may only share a bucket, never an entry. The
cache is therefore semantically exact — a hit returns a problem whose
diagonal and optimum are bit-identical to a freshly built one.

The cache is thread-safe (the evaluation executor's ``thread`` backend
shares one instance across workers). Pickling drops the lock and the
cached entries: a process-backend worker starts with an empty cache
rather than paying to serialize megabytes of diagonals per task.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.graphs.canonical import wl_canonical_hash
from repro.graphs.graph import Graph
from repro.maxcut.problem import MaxCutProblem

#: Exact structural identity of a labeled graph (name excluded).
GraphSignature = Tuple[int, Tuple[Tuple[int, int], ...], Tuple[float, ...]]


def graph_signature(graph: Graph) -> GraphSignature:
    """Structural key for a graph: node count, edges, weights.

    Ignores ``name`` — two differently named but structurally identical
    graphs share one Max-Cut instance.
    """
    return (graph.num_nodes, graph.edges, graph.weights)


class ProblemCache:
    """LRU cache of :class:`MaxCutProblem` instances.

    Parameters
    ----------
    max_entries:
        Maximum number of cached problems (LRU eviction); ``None`` means
        unbounded — at evaluation scale (hundreds of graphs, n <= 15)
        the diagonals total a few megabytes.

    ``get`` returns the *same* problem object for structurally identical
    graphs, so its memoized diagonal and optimum are computed once and
    shared by every consumer (both comparison arms, all architectures,
    repeated ``run_many`` graphs).
    """

    def __init__(self, max_entries: Optional[int] = None):
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        # (wl_hash, signature) -> problem, in LRU order (oldest first).
        self._entries: "OrderedDict[Tuple[str, GraphSignature], MaxCutProblem]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0

    def get(self, graph: Graph) -> MaxCutProblem:
        """The cached problem for ``graph`` (built on first request)."""
        key = (wl_canonical_hash(graph), graph_signature(graph))
        with self._lock:
            problem = self._entries.get(key)
            if problem is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return problem
            self.misses += 1
        # Build outside the lock: diagonal construction is the expensive
        # part and must not serialize the thread backend. A racing miss
        # on the same key builds twice; the first insert wins.
        problem = MaxCutProblem(graph)
        problem.cost_diagonal()
        problem.optimum()
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self._entries.move_to_end(key)
                return existing
            self._entries[key] = problem
            if (
                self.max_entries is not None
                and len(self._entries) > self.max_entries
            ):
                self._entries.popitem(last=False)
        return problem

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop all entries and reset hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> Dict[str, float]:
        """Hit/miss counters plus entry and WL-class counts."""
        with self._lock:
            entries = len(self._entries)
            classes = len({wl for wl, _ in self._entries})
            hits, misses = self.hits, self.misses
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / total if total else 0.0,
            "entries": entries,
            "wl_classes": classes,
        }

    # -- pickling: process-backend workers get a fresh, unlocked cache --
    def __getstate__(self) -> dict:
        return {"max_entries": self.max_entries}

    def __setstate__(self, state: dict) -> None:
        self.__init__(max_entries=state["max_entries"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProblemCache(entries={len(self)}, hits={self.hits}, "
            f"misses={self.misses})"
        )
