"""Goemans-Williamson SDP relaxation for Max-Cut.

Related work warm-starts QAOA with GW rounding (Egger et al. 2021); we
implement it as an additional initialization baseline. Since no SDP
solver ships in this environment, we solve the relaxation in the
Burer-Monteiro low-rank form: embed each node as a unit vector
``v_i in R^k`` and maximize ``sum_ij w_ij (1 - v_i . v_j) / 2`` by
projected gradient ascent on the product of spheres. For
``k >= ceil(sqrt(2 n))`` the low-rank problem has no spurious local
optima (Boumal et al. 2016), so this recovers the SDP optimum; rounding
is the classic random-hyperplane scheme with the 0.878 guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import OptimizationError
from repro.graphs.graph import Graph
from repro.maxcut.problem import MaxCutSolution, cut_value
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class GWResult:
    """Output of :func:`goemans_williamson`.

    Attributes
    ----------
    solution:
        Best rounded cut across all hyperplane samples.
    sdp_value:
        Objective of the (low-rank) SDP relaxation — an upper bound on
        the optimal cut.
    embedding:
        Final unit-vector embedding, shape ``(n, rank)``.
    """

    solution: MaxCutSolution
    sdp_value: float
    embedding: np.ndarray


def solve_lowrank_sdp(
    graph: Graph,
    rank: Optional[int] = None,
    max_iters: int = 500,
    learning_rate: float = 0.1,
    tol: float = 1e-8,
    rng: RngLike = None,
) -> np.ndarray:
    """Maximize the Max-Cut SDP objective over unit vectors in R^rank.

    Returns the embedding matrix ``V`` with unit rows. Projected gradient
    ascent with diminishing effective step via monotone backtracking.
    """
    n = graph.num_nodes
    if rank is None:
        rank = max(2, int(np.ceil(np.sqrt(2 * n))) + 1)
    if rank < 1:
        raise OptimizationError(f"rank must be positive, got {rank}")
    generator = ensure_rng(rng)
    adj = graph.adjacency_matrix()
    embedding = generator.normal(size=(n, rank))
    embedding /= np.linalg.norm(embedding, axis=1, keepdims=True)

    def objective(V: np.ndarray) -> float:
        gram = V @ V.T
        return float((adj * (1.0 - gram)).sum() / 4.0)

    value = objective(embedding)
    step = learning_rate
    for _ in range(max_iters):
        # d/dV of sum w_ij (1 - v_i.v_j)/2 over unordered pairs = -A V / 2
        gradient = -(adj @ embedding) / 2.0
        candidate = embedding + step * gradient
        norms = np.linalg.norm(candidate, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        candidate /= norms
        new_value = objective(candidate)
        if new_value < value - tol:
            step *= 0.5
            if step < 1e-12:
                break
            continue
        converged = abs(new_value - value) < tol
        embedding, value = candidate, new_value
        if converged:
            break
    return embedding


def round_embedding(
    graph: Graph,
    embedding: np.ndarray,
    num_rounds: int = 50,
    rng: RngLike = None,
) -> MaxCutSolution:
    """Random-hyperplane rounding: best of ``num_rounds`` samples."""
    generator = ensure_rng(rng)
    n, rank = embedding.shape
    best_value = -np.inf
    best_bits = np.zeros(n, dtype=np.int64)
    for _ in range(num_rounds):
        normal = generator.normal(size=rank)
        bits = (embedding @ normal >= 0).astype(np.int64)
        value = cut_value(graph, bits)
        if value > best_value:
            best_value = value
            best_bits = bits
    assignment = int(sum(int(b) << i for i, b in enumerate(best_bits)))
    return MaxCutSolution(assignment=assignment, value=float(best_value))


def goemans_williamson(
    graph: Graph,
    rank: Optional[int] = None,
    max_iters: int = 500,
    num_rounds: int = 50,
    rng: RngLike = None,
) -> GWResult:
    """Full GW pipeline: low-rank SDP solve + hyperplane rounding."""
    generator = ensure_rng(rng)
    embedding = solve_lowrank_sdp(
        graph, rank=rank, max_iters=max_iters, rng=generator
    )
    gram = embedding @ embedding.T
    sdp_value = float((graph.adjacency_matrix() * (1.0 - gram)).sum() / 4.0)
    solution = round_embedding(graph, embedding, num_rounds, generator)
    return GWResult(solution=solution, sdp_value=sdp_value, embedding=embedding)
