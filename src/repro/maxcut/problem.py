"""Max-Cut problem wrapper and cut-value machinery.

A cut is an assignment of each node to one of two sides. We encode
assignments as bitstrings (integers) or as 0/1 numpy vectors. The cut
value is the total weight of edges whose endpoints land on opposite
sides; the *approximation ratio* of a cut (or of a QAOA expectation) is
its value divided by the optimal cut value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.graph import Graph

Assignment = Union[int, Sequence[int], np.ndarray]


def assignment_to_bits(assignment: Assignment, num_nodes: int) -> np.ndarray:
    """Normalize an assignment to a 0/1 vector of length ``num_nodes``.

    Integers are interpreted as bitstrings with node ``i`` at bit ``i``.
    """
    if isinstance(assignment, (int, np.integer)):
        value = int(assignment)
        if not 0 <= value < (1 << num_nodes):
            raise GraphError(
                f"bitstring {value} out of range for {num_nodes} nodes"
            )
        return (value >> np.arange(num_nodes)) & 1
    bits = np.asarray(assignment, dtype=np.int64)
    if bits.shape != (num_nodes,):
        raise GraphError(
            f"assignment shape {bits.shape} != ({num_nodes},)"
        )
    if not np.isin(bits, (0, 1)).all():
        raise GraphError("assignment entries must be 0 or 1")
    return bits


def cut_value(graph: Graph, assignment: Assignment) -> float:
    """Total weight of edges crossing the cut defined by ``assignment``."""
    bits = assignment_to_bits(assignment, graph.num_nodes)
    if graph.num_edges == 0:
        return 0.0
    edges = graph.edge_array()
    crossing = bits[edges[:, 0]] != bits[edges[:, 1]]
    return float(graph.weight_array()[crossing].sum())


def all_cut_values(graph: Graph) -> np.ndarray:
    """Cut value of every bitstring ``0 .. 2^n - 1``, vectorized.

    This is the diagonal of the Max-Cut cost Hamiltonian in the
    computational basis and the core primitive for both brute force and
    the fast QAOA simulator. Memory is ``O(2^n)`` floats.
    """
    n = graph.num_nodes
    if n > 26:
        raise GraphError(f"all_cut_values infeasible for n={n} (> 26)")
    values = np.zeros(1 << n, dtype=np.float64)
    if graph.num_edges == 0:
        return values
    states = np.arange(1 << n, dtype=np.int64)
    for (u, v), w in zip(graph.edges, graph.weights):
        bits_u = (states >> u) & 1
        bits_v = (states >> v) & 1
        values += w * (bits_u ^ bits_v)
    return values


@dataclass(frozen=True)
class MaxCutSolution:
    """An exact or approximate Max-Cut solution.

    Attributes
    ----------
    assignment:
        Best bitstring found (node ``i`` at bit ``i``).
    value:
        Cut value of ``assignment``.
    optimal:
        True when the solver guarantees global optimality.
    """

    assignment: int
    value: float
    optimal: bool = False

    def bits(self, num_nodes: int) -> np.ndarray:
        """The assignment as a 0/1 vector."""
        return assignment_to_bits(self.assignment, num_nodes)


class MaxCutProblem:
    """A Max-Cut instance with cached optimum and cost diagonal.

    Wraps a :class:`Graph` and memoizes the expensive quantities every
    downstream consumer needs: the full cut-value diagonal (for the QAOA
    simulator) and the exact optimum (for approximation ratios).
    """

    def __init__(self, graph: Graph):
        if graph.num_nodes < 1:
            raise GraphError("empty graph")
        self.graph = graph
        self._diagonal: Optional[np.ndarray] = None
        self._optimum: Optional[MaxCutSolution] = None

    @property
    def num_nodes(self) -> int:
        """Number of nodes (= qubits for QAOA)."""
        return self.graph.num_nodes

    def cost_diagonal(self) -> np.ndarray:
        """Cached :func:`all_cut_values` for this instance."""
        if self._diagonal is None:
            self._diagonal = all_cut_values(self.graph)
        return self._diagonal

    def optimum(self) -> MaxCutSolution:
        """Exact optimum by vectorized brute force (cached)."""
        if self._optimum is None:
            diagonal = self.cost_diagonal()
            best = int(diagonal.argmax())
            self._optimum = MaxCutSolution(
                assignment=best, value=float(diagonal[best]), optimal=True
            )
        return self._optimum

    def max_cut_value(self) -> float:
        """Optimal cut value."""
        return self.optimum().value

    def cut_value(self, assignment: Assignment) -> float:
        """Cut value of an arbitrary assignment."""
        return cut_value(self.graph, assignment)

    def approximation_ratio(self, value: float) -> float:
        """``value / optimum`` (1.0 when the graph has no edges)."""
        optimum = self.max_cut_value()
        if optimum <= 0.0:
            return 1.0
        return float(value) / optimum

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MaxCutProblem({self.graph!r})"
