"""Classical heuristic Max-Cut baselines.

These give cheap classical reference points next to QAOA and the
Goemans-Williamson SDP: a one-pass greedy construction, randomized
assignment, and 1-flip local search (which achieves at least half the
total edge weight, a classical guarantee mirrored in the tests).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.maxcut.problem import MaxCutSolution, cut_value
from repro.utils.rng import RngLike, ensure_rng


def greedy_maxcut(graph: Graph) -> MaxCutSolution:
    """Place nodes one by one on the side that currently cuts more weight."""
    side = np.zeros(graph.num_nodes, dtype=np.int64)
    adj = graph.adjacency_matrix()
    for node in range(1, graph.num_nodes):
        placed = np.arange(node)
        weight_to_zero = adj[node, placed][side[placed] == 0].sum()
        weight_to_one = adj[node, placed][side[placed] == 1].sum()
        # Joining side 1 cuts all weight to side-0 nodes, and vice versa.
        side[node] = 1 if weight_to_zero >= weight_to_one else 0
    value = cut_value(graph, side)
    return MaxCutSolution(assignment=_bits_to_int(side), value=value)


def random_cut(graph: Graph, rng: RngLike = None) -> MaxCutSolution:
    """Uniformly random assignment (expected value = half the total weight)."""
    generator = ensure_rng(rng)
    side = generator.integers(0, 2, size=graph.num_nodes)
    return MaxCutSolution(
        assignment=_bits_to_int(side), value=cut_value(graph, side)
    )


def local_search_maxcut(
    graph: Graph,
    start: np.ndarray = None,
    max_passes: int = 100,
    rng: RngLike = None,
) -> MaxCutSolution:
    """1-flip local search: move any node whose flip increases the cut.

    Terminates at a local optimum where every single-node flip is
    non-improving; such optima cut at least half of the total weight.
    """
    generator = ensure_rng(rng)
    if start is None:
        side = generator.integers(0, 2, size=graph.num_nodes)
    else:
        side = np.asarray(start, dtype=np.int64).copy()
    adj = graph.adjacency_matrix()
    for _ in range(max_passes):
        improved = False
        for node in range(graph.num_nodes):
            same = adj[node][side == side[node]].sum() - adj[node, node]
            across = adj[node][side != side[node]].sum()
            if same > across:
                side[node] ^= 1
                improved = True
        if not improved:
            break
    return MaxCutSolution(
        assignment=_bits_to_int(side), value=cut_value(graph, side)
    )


def _bits_to_int(bits: np.ndarray) -> int:
    return int(sum(int(b) << i for i, b in enumerate(bits)))
