"""Random graph generators for dataset construction.

The paper's dataset is "synthetic regular graphs ... nodes ranging from 2
to 15" with degrees 2-14 (Fig. 2). :func:`random_regular_graph` is the
workhorse; the other generators support the examples, the weighted-graph
future-work experiments, and robustness tests.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.graph import Graph
from repro.utils.rng import RngLike, ensure_rng


def random_regular_graph(
    num_nodes: int,
    degree: int,
    rng: RngLike = None,
    max_tries: int = 200,
    name: str = "",
) -> Graph:
    """Sample a random ``degree``-regular simple graph on ``num_nodes`` nodes.

    Uses the pairing (configuration) model with rejection of self loops
    and multi-edges, restarting until a simple graph is found. Requires
    ``num_nodes * degree`` even and ``degree < num_nodes``. Dense degrees
    (``degree > (n - 1) / 2``) are sampled as the complement of a sparse
    regular graph, where rejection sampling would otherwise stall (the
    extreme case ``degree = n - 1`` has a unique graph, K_n).
    """
    if degree < 0:
        raise GraphError(f"degree must be nonnegative, got {degree}")
    if degree >= num_nodes:
        raise GraphError(
            f"degree {degree} impossible with {num_nodes} nodes (need degree < n)"
        )
    if (num_nodes * degree) % 2 != 0:
        raise GraphError(
            f"no {degree}-regular graph on {num_nodes} nodes (odd stub count)"
        )
    if degree == 0:
        return Graph(num_nodes, (), name=name)
    if degree == num_nodes - 1:
        return Graph.complete(num_nodes, name=name)
    if degree > (num_nodes - 1) / 2:
        sparse = random_regular_graph(
            num_nodes, num_nodes - 1 - degree, rng, max_tries
        )
        present = set(sparse.edges)
        edges = tuple(
            (u, v)
            for u in range(num_nodes)
            for v in range(u + 1, num_nodes)
            if (u, v) not in present
        )
        return Graph(num_nodes, edges, name=name)

    generator = ensure_rng(rng)
    stubs = np.repeat(np.arange(num_nodes), degree)
    for _ in range(max_tries):
        generator.shuffle(stubs)
        pairs = stubs.reshape(-1, 2)
        edges = set()
        ok = True
        for u, v in pairs:
            u, v = int(u), int(v)
            if u == v:
                ok = False
                break
            key = (min(u, v), max(u, v))
            if key in edges:
                ok = False
                break
            edges.add(key)
        if ok:
            return Graph(num_nodes, tuple(sorted(edges)), name=name)
    # Dense mid-range degrees defeat plain rejection; fall back to the
    # McKay-Wormald-style sampler in networkx, seeded from our stream.
    import networkx as nx

    seed = int(generator.integers(0, 2**31 - 1))
    nx_graph = nx.random_regular_graph(degree, num_nodes, seed=seed)
    return Graph.from_networkx(nx_graph, name=name)


def feasible_regular_degrees(num_nodes: int) -> List[int]:
    """Degrees d >= 2 for which a d-regular simple graph on n nodes exists."""
    return [
        degree
        for degree in range(2, num_nodes)
        if (num_nodes * degree) % 2 == 0
    ]


def erdos_renyi_graph(
    num_nodes: int,
    edge_probability: float,
    rng: RngLike = None,
    name: str = "",
) -> Graph:
    """Sample a G(n, p) graph."""
    if not 0.0 <= edge_probability <= 1.0:
        raise GraphError(f"edge probability {edge_probability} not in [0, 1]")
    generator = ensure_rng(rng)
    edges = []
    for u in range(num_nodes):
        for v in range(u + 1, num_nodes):
            if generator.random() < edge_probability:
                edges.append((u, v))
    return Graph(num_nodes, tuple(edges), name=name)


def random_connected_graph(
    num_nodes: int,
    extra_edge_probability: float = 0.3,
    rng: RngLike = None,
    name: str = "",
) -> Graph:
    """A random spanning tree plus independent extra edges (always connected)."""
    generator = ensure_rng(rng)
    edges = set()
    # Random spanning tree via random attachment.
    order = generator.permutation(num_nodes)
    for index in range(1, num_nodes):
        u = int(order[index])
        v = int(order[generator.integers(0, index)])
        edges.add((min(u, v), max(u, v)))
    for u in range(num_nodes):
        for v in range(u + 1, num_nodes):
            if (u, v) not in edges and generator.random() < extra_edge_probability:
                edges.add((u, v))
    return Graph(num_nodes, tuple(sorted(edges)), name=name)


def random_weighted_graph(
    num_nodes: int,
    edge_probability: float = 0.5,
    weight_range: Tuple[float, float] = (0.1, 2.0),
    rng: RngLike = None,
    name: str = "",
) -> Graph:
    """G(n, p) with uniform random edge weights (paper's future-work case)."""
    generator = ensure_rng(rng)
    base = erdos_renyi_graph(num_nodes, edge_probability, generator, name)
    low, high = weight_range
    if low > high:
        raise GraphError(f"weight range {weight_range} inverted")
    weights = generator.uniform(low, high, size=base.num_edges)
    return base.with_weights(weights)


def fully_connected_weighted_graph(
    num_nodes: int,
    weight_range: Tuple[float, float] = (0.0, 1.0),
    rng: RngLike = None,
    name: str = "",
) -> Graph:
    """Complete graph with random weights (Egger et al. warm-start setting)."""
    generator = ensure_rng(rng)
    base = Graph.complete(num_nodes, name=name)
    low, high = weight_range
    weights = generator.uniform(low, high, size=base.num_edges)
    return base.with_weights(weights)


def sample_dataset_graph(
    rng: RngLike = None,
    min_nodes: int = 3,
    max_nodes: int = 15,
    name: str = "",
) -> Graph:
    """Sample one regular graph matching the paper's dataset distribution.

    Graph size is uniform in ``[min_nodes, max_nodes]``; degree is uniform
    over the feasible regular degrees (2 .. n-1 with even stub count).
    """
    generator = ensure_rng(rng)
    for _ in range(100):
        num_nodes = int(generator.integers(min_nodes, max_nodes + 1))
        degrees = feasible_regular_degrees(num_nodes)
        if not degrees:
            continue
        degree = int(degrees[generator.integers(0, len(degrees))])
        try:
            return random_regular_graph(num_nodes, degree, generator, name=name)
        except GraphError:
            continue
    raise GraphError("could not sample a dataset graph")


def regular_graph_family(
    num_nodes_list: Sequence[int],
    degree: int,
    count_per_size: int = 1,
    rng: RngLike = None,
) -> List[Graph]:
    """Sample ``count_per_size`` ``degree``-regular graphs per listed size.

    Sizes where the degree is infeasible are skipped silently, which makes
    sweep construction convenient.
    """
    generator = ensure_rng(rng)
    graphs: List[Graph] = []
    for num_nodes in num_nodes_list:
        if degree >= num_nodes or (num_nodes * degree) % 2 != 0:
            continue
        for index in range(count_per_size):
            graphs.append(
                random_regular_graph(
                    num_nodes,
                    degree,
                    generator,
                    name=f"reg_n{num_nodes}_d{degree}_{index}",
                )
            )
    return graphs
