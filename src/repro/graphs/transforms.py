"""Graph transforms: line graphs, complements, disjoint unions.

The closest related work (Jain et al. 2022) warm-starts QAOA with a
*line graph* neural network; :func:`line_graph` provides the transform
so that encoder variant can be reproduced. The others support
robustness tests and dataset augmentation.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.exceptions import GraphError
from repro.graphs.graph import Graph


def line_graph(graph: Graph) -> Graph:
    """The line graph L(G): a node per edge, adjacency = shared endpoint.

    Node ``i`` of L(G) corresponds to ``graph.edges[i]``; the weight of
    an L(G) node's original edge is NOT carried (L(G) is unweighted) —
    use :func:`line_graph_features` for that information.
    """
    if graph.num_edges == 0:
        raise GraphError("line graph of an edgeless graph is empty")
    edges = []
    for i in range(graph.num_edges):
        u1, v1 = graph.edges[i]
        for j in range(i + 1, graph.num_edges):
            u2, v2 = graph.edges[j]
            if len({u1, v1} & {u2, v2}) == 1:
                edges.append((i, j))
    return Graph(
        graph.num_edges,
        tuple(edges),
        name=f"L({graph.name})" if graph.name else "",
    )


def line_graph_features(graph: Graph):
    """Per-line-graph-node features: [weight, deg(u), deg(v)].

    Ordered like ``graph.edges`` (= node order of :func:`line_graph`).
    """
    import numpy as np

    degrees = graph.degrees()
    rows = []
    for (u, v), w in zip(graph.edges, graph.weights):
        rows.append([w, float(degrees[u]), float(degrees[v])])
    return np.asarray(rows, dtype=np.float64)


def complement(graph: Graph) -> Graph:
    """The complement graph (unweighted)."""
    present = set(graph.edges)
    edges = tuple(
        (u, v)
        for u in range(graph.num_nodes)
        for v in range(u + 1, graph.num_nodes)
        if (u, v) not in present
    )
    return Graph(
        graph.num_nodes,
        edges,
        name=f"co({graph.name})" if graph.name else "",
    )


def disjoint_union(graphs: Sequence[Graph], name: str = "") -> Graph:
    """Disjoint union with node offsets (weights preserved)."""
    if not graphs:
        raise GraphError("union of nothing")
    edges: List[Tuple[int, int]] = []
    weights: List[float] = []
    offset = 0
    for graph in graphs:
        for (u, v), w in zip(graph.edges, graph.weights):
            edges.append((u + offset, v + offset))
            weights.append(w)
        offset += graph.num_nodes
    return Graph(offset, tuple(edges), tuple(weights), name)


def relabel(graph: Graph, permutation: Sequence[int]) -> Graph:
    """Apply a node permutation: new label of node ``i`` is
    ``permutation[i]``. Weights follow their edges."""
    perm = list(int(p) for p in permutation)
    if sorted(perm) != list(range(graph.num_nodes)):
        raise GraphError("not a permutation of the node set")
    edges = tuple((perm[u], perm[v]) for u, v in graph.edges)
    return Graph(graph.num_nodes, edges, graph.weights, graph.name)
