"""Lightweight weighted-graph container used throughout the library.

The paper works on undirected simple graphs with 2-15 nodes (regular
graphs for the dataset; weighted graphs appear as future work). We keep a
small immutable representation that is cheap to hash into datasets and
easy to convert to/from :mod:`networkx` when generators need it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import GraphError


@dataclass(frozen=True)
class Graph:
    """An undirected graph with optional edge weights.

    Attributes
    ----------
    num_nodes:
        Number of vertices; nodes are labeled ``0 .. num_nodes - 1``.
    edges:
        Tuple of ``(u, v)`` pairs with ``u < v`` (canonical order), no
        duplicates and no self loops.
    weights:
        Tuple of floats parallel to ``edges``. Unweighted graphs use 1.0.
    name:
        Optional identifier carried through datasets and result tables.
    """

    num_nodes: int
    edges: Tuple[Tuple[int, int], ...]
    weights: Tuple[float, ...] = field(default=())
    name: str = ""

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise GraphError(f"graph needs at least one node, got {self.num_nodes}")
        canonical: List[Tuple[int, int]] = []
        seen = set()
        for edge in self.edges:
            if len(edge) != 2:
                raise GraphError(f"edge {edge!r} is not a pair")
            u, v = int(edge[0]), int(edge[1])
            if u == v:
                raise GraphError(f"self loop on node {u}")
            if not (0 <= u < self.num_nodes and 0 <= v < self.num_nodes):
                raise GraphError(
                    f"edge ({u}, {v}) out of range for {self.num_nodes} nodes"
                )
            if u > v:
                u, v = v, u
            if (u, v) in seen:
                raise GraphError(f"duplicate edge ({u}, {v})")
            seen.add((u, v))
            canonical.append((u, v))
        object.__setattr__(self, "edges", tuple(canonical))
        if self.weights:
            if len(self.weights) != len(self.edges):
                raise GraphError(
                    f"{len(self.weights)} weights for {len(self.edges)} edges"
                )
            object.__setattr__(
                self, "weights", tuple(float(w) for w in self.weights)
            )
        else:
            object.__setattr__(self, "weights", tuple(1.0 for _ in self.edges))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_nodes: int,
        edges: Iterable[Sequence[int]],
        weights: Optional[Iterable[float]] = None,
        name: str = "",
    ) -> "Graph":
        """Build a graph from an edge iterable (weights optional)."""
        edge_tuple = tuple((int(u), int(v)) for u, v in edges)
        weight_tuple = tuple(weights) if weights is not None else ()
        return cls(num_nodes, edge_tuple, weight_tuple, name)

    @classmethod
    def from_networkx(cls, nx_graph, name: str = "") -> "Graph":
        """Convert a :class:`networkx.Graph`; node labels must be 0..n-1."""
        nodes = sorted(nx_graph.nodes())
        if nodes != list(range(len(nodes))):
            mapping = {node: index for index, node in enumerate(nodes)}
        else:
            mapping = {node: node for node in nodes}
        edges = []
        weights = []
        for u, v, data in nx_graph.edges(data=True):
            edges.append((mapping[u], mapping[v]))
            weights.append(float(data.get("weight", 1.0)))
        return cls(len(nodes), tuple(edges), tuple(weights), name)

    @classmethod
    def complete(cls, num_nodes: int, name: str = "") -> "Graph":
        """The complete graph K_n."""
        edges = tuple(
            (u, v) for u in range(num_nodes) for v in range(u + 1, num_nodes)
        )
        return cls(num_nodes, edges, name=name)

    @classmethod
    def cycle(cls, num_nodes: int, name: str = "") -> "Graph":
        """The cycle graph C_n (n >= 3)."""
        if num_nodes < 3:
            raise GraphError("cycle needs at least 3 nodes")
        edges = tuple((i, (i + 1) % num_nodes) for i in range(num_nodes))
        return cls(num_nodes, edges, name=name)

    @classmethod
    def path(cls, num_nodes: int, name: str = "") -> "Graph":
        """The path graph P_n."""
        edges = tuple((i, i + 1) for i in range(num_nodes - 1))
        return cls(num_nodes, edges, name=name)

    @classmethod
    def star(cls, num_nodes: int, name: str = "") -> "Graph":
        """The star graph with node 0 as hub."""
        if num_nodes < 2:
            raise GraphError("star needs at least 2 nodes")
        edges = tuple((0, i) for i in range(1, num_nodes))
        return cls(num_nodes, edges, name=name)

    # ------------------------------------------------------------------
    # Views and derived quantities
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of edges."""
        return len(self.edges)

    @property
    def is_weighted(self) -> bool:
        """True if any edge weight differs from 1.0."""
        return any(w != 1.0 for w in self.weights)

    @property
    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return float(sum(self.weights))

    def degrees(self) -> np.ndarray:
        """Unweighted node degrees as an int array of length ``num_nodes``."""
        degree = np.zeros(self.num_nodes, dtype=np.int64)
        for u, v in self.edges:
            degree[u] += 1
            degree[v] += 1
        return degree

    def max_degree(self) -> int:
        """Largest node degree (0 for edgeless graphs)."""
        if not self.edges:
            return 0
        return int(self.degrees().max())

    def is_regular(self) -> bool:
        """True if all nodes share the same degree."""
        degree = self.degrees()
        return bool((degree == degree[0]).all())

    def regular_degree(self) -> Optional[int]:
        """The common degree if the graph is regular, else ``None``."""
        degree = self.degrees()
        if (degree == degree[0]).all():
            return int(degree[0])
        return None

    def adjacency_matrix(self) -> np.ndarray:
        """Dense weighted adjacency matrix of shape (n, n)."""
        adj = np.zeros((self.num_nodes, self.num_nodes), dtype=np.float64)
        for (u, v), w in zip(self.edges, self.weights):
            adj[u, v] = w
            adj[v, u] = w
        return adj

    def edge_array(self) -> np.ndarray:
        """Edges as an int array of shape (num_edges, 2)."""
        if not self.edges:
            return np.zeros((0, 2), dtype=np.int64)
        return np.asarray(self.edges, dtype=np.int64)

    def weight_array(self) -> np.ndarray:
        """Edge weights as a float array of shape (num_edges,)."""
        return np.asarray(self.weights, dtype=np.float64)

    def neighbors(self, node: int) -> List[int]:
        """Sorted neighbor list of ``node``."""
        if not 0 <= node < self.num_nodes:
            raise GraphError(f"node {node} out of range")
        result = []
        for u, v in self.edges:
            if u == node:
                result.append(v)
            elif v == node:
                result.append(u)
        return sorted(result)

    def has_edge(self, u: int, v: int) -> bool:
        """True if the undirected edge (u, v) exists."""
        if u > v:
            u, v = v, u
        return (u, v) in set(self.edges)

    def with_weights(self, weights: Iterable[float]) -> "Graph":
        """Copy of this graph with new edge weights."""
        return Graph(self.num_nodes, self.edges, tuple(weights), self.name)

    def with_name(self, name: str) -> "Graph":
        """Copy of this graph with a new name."""
        return Graph(self.num_nodes, self.edges, self.weights, name)

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` with ``weight`` attributes."""
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(range(self.num_nodes))
        for (u, v), w in zip(self.edges, self.weights):
            nx_graph.add_edge(u, v, weight=w)
        return nx_graph

    def is_connected(self) -> bool:
        """True if the graph is connected (single node counts as connected)."""
        if self.num_nodes == 1:
            return True
        adjacency: Dict[int, List[int]] = {i: [] for i in range(self.num_nodes)}
        for u, v in self.edges:
            adjacency[u].append(v)
            adjacency[v].append(u)
        seen = {0}
        stack = [0]
        while stack:
            node = stack.pop()
            for other in adjacency[node]:
                if other not in seen:
                    seen.add(other)
                    stack.append(other)
        return len(seen) == self.num_nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" name={self.name!r}" if self.name else ""
        return (
            f"Graph(n={self.num_nodes}, m={self.num_edges}, "
            f"weighted={self.is_weighted}{label})"
        )
