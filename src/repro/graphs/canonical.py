"""Weisfeiler-Lehman canonical hashing for isomorphism-aware caching.

The serving layer wants relabeled copies of the same Max-Cut instance to
hit one cache entry, so it keys predictions by a canonical hash that is
invariant under node permutations. We use 1-dimensional Weisfeiler-Lehman
color refinement: every node starts from its (weighted) degree signature
and repeatedly absorbs the sorted multiset of its neighbors' colors (with
edge weights folded into each message) until the color partition stops
refining. The hash digests the per-round color histograms with SHA-256,
so it is stable across processes and Python hash randomization.

1-WL cannot distinguish every non-isomorphic pair — famously, all
d-regular graphs of one size share a coloring. That limit is *exactly*
the expressive power of the message-passing GNNs served here (GCN, GAT,
GIN, GraphSAGE are bounded by 1-WL), so two graphs that collide under
this hash receive identical predictions from the model anyway: the cache
stays semantically exact for the architectures it fronts.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Tuple

from repro.graphs.graph import Graph

#: Bump when the hash input layout changes; folded into every digest so
#: caches never mix hashes from different algorithm revisions.
WL_HASH_VERSION = 1


def _weight_token(weight: float) -> str:
    """Exact, repr-stable token for an edge weight (1.0 -> '1.0')."""
    return repr(float(weight))


def wl_color_classes(
    graph: Graph, max_iterations: int = None
) -> List[Tuple[int, ...]]:
    """Per-round WL colors: one tuple of node colors per refinement round.

    Colors are canonical integer ids assigned by sorting the refinement
    signatures, so the returned classes are invariant under node
    relabeling (up to the node-index permutation itself). Refinement
    stops when the partition is stable or after ``max_iterations``
    rounds (default: ``num_nodes``).
    """
    n = graph.num_nodes
    if max_iterations is None:
        max_iterations = max(1, n)

    # Weighted adjacency as per-node (weight_token, neighbor) lists.
    neighbors: List[List[Tuple[str, int]]] = [[] for _ in range(n)]
    for (u, v), w in zip(graph.edges, graph.weights):
        token = _weight_token(w)
        neighbors[u].append((token, v))
        neighbors[v].append((token, u))

    # Round 0: weighted-degree signature.
    signatures = [
        ("deg", len(neighbors[v]), tuple(sorted(t for t, _ in neighbors[v])))
        for v in range(n)
    ]
    colors = _canonicalize(signatures)
    rounds = [colors]
    for _ in range(max_iterations):
        signatures = [
            (
                colors[v],
                tuple(sorted((token, colors[u]) for token, u in neighbors[v])),
            )
            for v in range(n)
        ]
        refined = _canonicalize(signatures)
        if refined == colors:
            break
        colors = refined
        rounds.append(colors)
    return rounds


def _canonicalize(signatures: List) -> Tuple[int, ...]:
    """Map signatures to dense integer colors by sorted signature order.

    Signatures within one round are homogeneous tuples, so plain tuple
    ordering applies. Because a refinement signature leads with the old
    color and old colors are dense ranks, a stable partition reproduces
    exactly the same ids — which is what the fixpoint test checks.
    """
    order: Dict[object, int] = {
        signature: index
        for index, signature in enumerate(sorted(set(signatures)))
    }
    return tuple(order[s] for s in signatures)


def wl_canonical_hash(graph: Graph, max_iterations: int = None) -> str:
    """Permutation-invariant SHA-256 hash of a graph's WL coloring.

    Two isomorphic graphs always hash identically; graphs differing in
    node count, degree sequence, edge weights, or any WL-visible
    structure hash differently. See the module docstring for the 1-WL
    collision caveat and why it is harmless for GNN serving.
    """
    digest = hashlib.sha256()
    digest.update(f"wl-v{WL_HASH_VERSION}\x00".encode())
    digest.update(f"n={graph.num_nodes}\x00m={graph.num_edges}\x00".encode())
    for colors in wl_color_classes(graph, max_iterations):
        histogram = sorted(
            (color, colors.count(color)) for color in set(colors)
        )
        digest.update(repr(histogram).encode())
        digest.update(b"\x00")
    return digest.hexdigest()


def wl_indistinguishable(a: Graph, b: Graph) -> bool:
    """True if 1-WL cannot tell ``a`` and ``b`` apart.

    A necessary condition for isomorphism, and a sufficient condition for
    the message-passing architectures in :mod:`repro.gnn` to produce
    identical outputs (up to floating-point summation order).
    """
    return wl_canonical_hash(a) == wl_canonical_hash(b)
