"""Node feature construction for the GNN encoders.

The paper: "We compute node degrees and one-hot encoding of node IDs as
node features" with "input dimension ... 15" (the maximum graph size).
Prepending a degree column would give dimension 16, so to honor the
stated input dimension the default encoding writes the degree into the
node's own one-hot slot: ``x[v] = degree(v) * e_v``, zero-padded to
``max_nodes`` = 15. The plain one-hot, the 16-dim concatenation, and a
permutation-invariant structural variant are also provided.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.graph import Graph

PAPER_INPUT_DIM = 15


def onehot_id_features(graph: Graph, max_nodes: int = PAPER_INPUT_DIM) -> np.ndarray:
    """One-hot node-id features, zero-padded to ``max_nodes`` columns."""
    _check_size(graph, max_nodes)
    features = np.zeros((graph.num_nodes, max_nodes), dtype=np.float64)
    features[np.arange(graph.num_nodes), np.arange(graph.num_nodes)] = 1.0
    return features


def degree_onehot_features(
    graph: Graph, max_nodes: int = PAPER_INPUT_DIM
) -> np.ndarray:
    """Paper-default features: degree written into the node's one-hot slot.

    Shape ``(num_nodes, max_nodes)``; row ``v`` is ``degree(v) * e_v``.
    This matches the paper's input dimension of 15 while encoding both the
    node degree and its identity.
    """
    _check_size(graph, max_nodes)
    features = np.zeros((graph.num_nodes, max_nodes), dtype=np.float64)
    degrees = graph.degrees().astype(np.float64)
    features[np.arange(graph.num_nodes), np.arange(graph.num_nodes)] = degrees
    return features


def degree_plus_onehot_features(
    graph: Graph, max_nodes: int = PAPER_INPUT_DIM
) -> np.ndarray:
    """Degree column concatenated with one-hot ids: shape ``(n, max_nodes+1)``."""
    _check_size(graph, max_nodes)
    degrees = graph.degrees().astype(np.float64)[:, None]
    return np.concatenate([degrees, onehot_id_features(graph, max_nodes)], axis=1)


def structural_features(graph: Graph) -> np.ndarray:
    """Permutation-invariant structural features (generalization studies).

    Columns: degree, normalized degree, clustering-style triangle count,
    mean neighbor degree, weighted degree. Shape ``(n, 5)``.
    """
    degrees = graph.degrees().astype(np.float64)
    adj = graph.adjacency_matrix()
    binary = (adj > 0).astype(np.float64)
    triangles = np.diag(binary @ binary @ binary) / 2.0
    neighbor_sum = binary @ degrees
    mean_neighbor_degree = np.divide(
        neighbor_sum,
        np.maximum(degrees, 1.0),
        out=np.zeros_like(neighbor_sum),
        where=degrees > 0,
    )
    weighted_degree = adj.sum(axis=1)
    max_degree = max(graph.num_nodes - 1, 1)
    return np.stack(
        [
            degrees,
            degrees / max_degree,
            triangles,
            mean_neighbor_degree,
            weighted_degree,
        ],
        axis=1,
    )


def build_features(
    graph: Graph, kind: str = "degree_onehot", max_nodes: int = PAPER_INPUT_DIM
) -> np.ndarray:
    """Dispatch feature construction by name.

    ``kind`` is one of ``degree_onehot`` (paper default), ``onehot``,
    ``degree_plus_onehot`` or ``structural``.
    """
    if kind == "degree_onehot":
        return degree_onehot_features(graph, max_nodes)
    if kind == "onehot":
        return onehot_id_features(graph, max_nodes)
    if kind == "degree_plus_onehot":
        return degree_plus_onehot_features(graph, max_nodes)
    if kind == "structural":
        return structural_features(graph)
    raise GraphError(f"unknown feature kind {kind!r}")


def feature_dim(kind: str = "degree_onehot", max_nodes: int = PAPER_INPUT_DIM) -> int:
    """Input dimension produced by :func:`build_features` for ``kind``."""
    if kind in ("degree_onehot", "onehot"):
        return max_nodes
    if kind == "degree_plus_onehot":
        return max_nodes + 1
    if kind == "structural":
        return 5
    raise GraphError(f"unknown feature kind {kind!r}")


def _check_size(graph: Graph, max_nodes: int) -> None:
    if graph.num_nodes > max_nodes:
        raise GraphError(
            f"graph has {graph.num_nodes} nodes but features are capped at "
            f"{max_nodes}; raise max_nodes"
        )
