"""Node feature construction for the GNN encoders.

The paper: "We compute node degrees and one-hot encoding of node IDs as
node features" with "input dimension ... 15" (the maximum graph size).
Prepending a degree column would give dimension 16, so to honor the
stated input dimension the default encoding writes the degree into the
node's own one-hot slot: ``x[v] = degree(v) * e_v``, zero-padded to
``max_nodes`` = 15. The plain one-hot, the 16-dim concatenation, and a
permutation-invariant structural variant are also provided.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.graph import Graph

PAPER_INPUT_DIM = 15

#: WL-histogram feature geometry: refinement rounds kept and color
#: buckets per round. The dimension (rounds * buckets) is fixed, so the
#: kind works at any graph size.
WL_FEATURE_ROUNDS = 3
WL_FEATURE_BUCKETS = 8

#: Random-walk steps for the degree/positional kind: dimension is
#: 2 (degree, normalized degree) + this many return probabilities.
POSITIONAL_WALK_STEPS = 6

#: Kinds whose dimension does not depend on graph size — models built on
#: them have no maximum node count.
SIZE_AGNOSTIC_KINDS = ("structural", "wl_histogram", "degree_positional")

FEATURE_KINDS = (
    "degree_onehot",
    "onehot",
    "degree_plus_onehot",
) + SIZE_AGNOSTIC_KINDS


def onehot_id_features(graph: Graph, max_nodes: int = PAPER_INPUT_DIM) -> np.ndarray:
    """One-hot node-id features, zero-padded to ``max_nodes`` columns."""
    _check_size(graph, max_nodes)
    features = np.zeros((graph.num_nodes, max_nodes), dtype=np.float64)
    features[np.arange(graph.num_nodes), np.arange(graph.num_nodes)] = 1.0
    return features


def degree_onehot_features(
    graph: Graph, max_nodes: int = PAPER_INPUT_DIM
) -> np.ndarray:
    """Paper-default features: degree written into the node's one-hot slot.

    Shape ``(num_nodes, max_nodes)``; row ``v`` is ``degree(v) * e_v``.
    This matches the paper's input dimension of 15 while encoding both the
    node degree and its identity.
    """
    _check_size(graph, max_nodes)
    features = np.zeros((graph.num_nodes, max_nodes), dtype=np.float64)
    degrees = graph.degrees().astype(np.float64)
    features[np.arange(graph.num_nodes), np.arange(graph.num_nodes)] = degrees
    return features


def degree_plus_onehot_features(
    graph: Graph, max_nodes: int = PAPER_INPUT_DIM
) -> np.ndarray:
    """Degree column concatenated with one-hot ids: shape ``(n, max_nodes+1)``."""
    _check_size(graph, max_nodes)
    degrees = graph.degrees().astype(np.float64)[:, None]
    return np.concatenate([degrees, onehot_id_features(graph, max_nodes)], axis=1)


def structural_features(graph: Graph) -> np.ndarray:
    """Permutation-invariant structural features (generalization studies).

    Columns: degree, normalized degree, clustering-style triangle count,
    mean neighbor degree, weighted degree. Shape ``(n, 5)``.
    """
    degrees = graph.degrees().astype(np.float64)
    adj = graph.adjacency_matrix()
    binary = (adj > 0).astype(np.float64)
    triangles = np.diag(binary @ binary @ binary) / 2.0
    neighbor_sum = binary @ degrees
    mean_neighbor_degree = np.divide(
        neighbor_sum,
        np.maximum(degrees, 1.0),
        out=np.zeros_like(neighbor_sum),
        where=degrees > 0,
    )
    weighted_degree = adj.sum(axis=1)
    max_degree = max(graph.num_nodes - 1, 1)
    return np.stack(
        [
            degrees,
            degrees / max_degree,
            triangles,
            mean_neighbor_degree,
            weighted_degree,
        ],
        axis=1,
    )


def wl_histogram_features(
    graph: Graph,
    rounds: int = WL_FEATURE_ROUNDS,
    buckets: int = WL_FEATURE_BUCKETS,
) -> np.ndarray:
    """Per-node WL-color histograms over the closed neighborhood.

    For each of ``rounds`` 1-WL refinement rounds (round 0 = degree
    signature; stabilized colorings repeat the final round), node ``v``
    gets the normalized color histogram of ``{v} ∪ N(v)`` with colors
    bucketed modulo ``buckets``. Colors are the canonical dense ids from
    :func:`~repro.graphs.canonical.wl_color_classes`, so the features
    are permutation-equivariant; the dimension ``rounds * buckets``
    never depends on graph size.
    """
    from repro.graphs.canonical import wl_color_classes

    if rounds < 1 or buckets < 1:
        raise GraphError("wl_histogram needs rounds >= 1 and buckets >= 1")
    n = graph.num_nodes
    color_rounds = wl_color_classes(graph, max_iterations=rounds - 1)
    neighbors = [[] for _ in range(n)]
    for u, v in graph.edges:
        neighbors[u].append(v)
        neighbors[v].append(u)
    features = np.zeros((n, rounds * buckets), dtype=np.float64)
    for r in range(rounds):
        colors = color_rounds[min(r, len(color_rounds) - 1)]
        base = r * buckets
        for v in range(n):
            members = [v] + neighbors[v]
            weight = 1.0 / len(members)
            for u in members:
                features[v, base + colors[u] % buckets] += weight
    return features


def degree_positional_features(
    graph: Graph, walk_steps: int = POSITIONAL_WALK_STEPS
) -> np.ndarray:
    """Degree plus random-walk return probabilities (RWSE).

    Columns: degree, degree normalized by ``n - 1``, then
    ``diag(P^k)`` for ``k = 1..walk_steps`` with ``P = D^{-1} A`` (the
    weighted random-walk operator; rows of isolated nodes are zero).
    Permutation-equivariant with a fixed dimension ``2 + walk_steps``.
    """
    if walk_steps < 1:
        raise GraphError("degree_positional needs walk_steps >= 1")
    degrees = graph.degrees().astype(np.float64)
    adj = graph.adjacency_matrix().astype(np.float64)
    weighted_degree = adj.sum(axis=1)
    inv = np.divide(
        1.0,
        weighted_degree,
        out=np.zeros_like(weighted_degree),
        where=weighted_degree > 0,
    )
    walk = adj * inv[:, None]
    max_degree = max(graph.num_nodes - 1, 1)
    columns = [degrees, degrees / max_degree]
    power = walk
    for _ in range(walk_steps):
        columns.append(np.diag(power).copy())
        power = power @ walk
    return np.stack(columns, axis=1)


def build_features(
    graph: Graph, kind: str = "degree_onehot", max_nodes: int = PAPER_INPUT_DIM
) -> np.ndarray:
    """Dispatch feature construction by name.

    ``kind`` is one of ``degree_onehot`` (paper default), ``onehot``,
    ``degree_plus_onehot``, or the size-agnostic ``structural``,
    ``wl_histogram``, ``degree_positional`` (``max_nodes`` is ignored
    for those).
    """
    if kind == "degree_onehot":
        return degree_onehot_features(graph, max_nodes)
    if kind == "onehot":
        return onehot_id_features(graph, max_nodes)
    if kind == "degree_plus_onehot":
        return degree_plus_onehot_features(graph, max_nodes)
    if kind == "structural":
        return structural_features(graph)
    if kind == "wl_histogram":
        return wl_histogram_features(graph)
    if kind == "degree_positional":
        return degree_positional_features(graph)
    raise GraphError(f"unknown feature kind {kind!r}")


def feature_dim(kind: str = "degree_onehot", max_nodes: int = PAPER_INPUT_DIM) -> int:
    """Input dimension produced by :func:`build_features` for ``kind``."""
    if kind in ("degree_onehot", "onehot"):
        return max_nodes
    if kind == "degree_plus_onehot":
        return max_nodes + 1
    if kind == "structural":
        return 5
    if kind == "wl_histogram":
        return WL_FEATURE_ROUNDS * WL_FEATURE_BUCKETS
    if kind == "degree_positional":
        return 2 + POSITIONAL_WALK_STEPS
    raise GraphError(f"unknown feature kind {kind!r}")


def feature_max_nodes(kind: str, max_nodes: int = PAPER_INPUT_DIM):
    """Largest graph ``kind`` can featurize (``None`` = unbounded).

    One-hot-style kinds are capped by their column budget; the
    size-agnostic kinds work at any graph size, which is what lets a
    model trained on small graphs answer for arbitrarily large ones.
    """
    if kind in SIZE_AGNOSTIC_KINDS:
        return None
    if kind in ("degree_onehot", "onehot", "degree_plus_onehot"):
        return int(max_nodes)
    raise GraphError(f"unknown feature kind {kind!r}")


def _check_size(graph: Graph, max_nodes: int) -> None:
    if graph.num_nodes > max_nodes:
        raise GraphError(
            f"graph has {graph.num_nodes} nodes but features are capped at "
            f"{max_nodes}; raise max_nodes"
        )
