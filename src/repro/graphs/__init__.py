"""Graph substrate: container, generators, IO and node features."""

from repro.graphs.graph import Graph
from repro.graphs.generators import (
    erdos_renyi_graph,
    feasible_regular_degrees,
    fully_connected_weighted_graph,
    random_connected_graph,
    random_regular_graph,
    random_weighted_graph,
    regular_graph_family,
    sample_dataset_graph,
)
from repro.graphs.io import (
    graph_from_text,
    graph_to_text,
    load_graph,
    load_graphs,
    save_graph,
    save_graphs,
)
from repro.graphs.canonical import (
    WL_HASH_VERSION,
    wl_canonical_hash,
    wl_color_classes,
    wl_indistinguishable,
)
from repro.graphs.transforms import (
    complement,
    disjoint_union,
    line_graph,
    line_graph_features,
    relabel,
)
from repro.graphs.features import (
    PAPER_INPUT_DIM,
    build_features,
    degree_onehot_features,
    degree_plus_onehot_features,
    feature_dim,
    onehot_id_features,
    structural_features,
)

__all__ = [
    "Graph",
    "erdos_renyi_graph",
    "feasible_regular_degrees",
    "fully_connected_weighted_graph",
    "random_connected_graph",
    "random_regular_graph",
    "random_weighted_graph",
    "regular_graph_family",
    "sample_dataset_graph",
    "graph_from_text",
    "graph_to_text",
    "load_graph",
    "load_graphs",
    "save_graph",
    "save_graphs",
    "WL_HASH_VERSION",
    "wl_canonical_hash",
    "wl_color_classes",
    "wl_indistinguishable",
    "complement",
    "disjoint_union",
    "line_graph",
    "line_graph_features",
    "relabel",
    "PAPER_INPUT_DIM",
    "build_features",
    "degree_onehot_features",
    "degree_plus_onehot_features",
    "feature_dim",
    "onehot_id_features",
    "structural_features",
]
