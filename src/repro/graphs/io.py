"""Text-file graph storage.

The paper stores "each graph ... in a text file, which is then inputted
into the QAOA algorithm". We use a simple line-oriented format:

.. code-block:: text

    # optional comment lines
    nodes <n>
    edge <u> <v> [weight]
    ...

plus helpers for reading/writing whole directories of graphs.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

from repro.exceptions import GraphFormatError
from repro.graphs.graph import Graph

PathLike = Union[str, Path]


def graph_to_text(graph: Graph) -> str:
    """Serialize ``graph`` to the text format."""
    lines = []
    if graph.name:
        lines.append(f"# name: {graph.name}")
    lines.append(f"nodes {graph.num_nodes}")
    for (u, v), w in zip(graph.edges, graph.weights):
        if w == 1.0:
            lines.append(f"edge {u} {v}")
        else:
            lines.append(f"edge {u} {v} {w!r}")
    return "\n".join(lines) + "\n"


def graph_from_text(text: str, name: str = "") -> Graph:
    """Parse a graph from the text format (inverse of :func:`graph_to_text`)."""
    num_nodes = None
    edges = []
    weights = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            if line.startswith("# name:") and not name:
                name = line[len("# name:"):].strip()
            continue
        parts = line.split()
        if parts[0] == "nodes":
            if num_nodes is not None:
                raise GraphFormatError(f"line {line_number}: duplicate 'nodes'")
            if len(parts) != 2:
                raise GraphFormatError(f"line {line_number}: malformed 'nodes'")
            try:
                num_nodes = int(parts[1])
            except ValueError as exc:
                raise GraphFormatError(
                    f"line {line_number}: bad node count {parts[1]!r}"
                ) from exc
        elif parts[0] == "edge":
            if len(parts) not in (3, 4):
                raise GraphFormatError(f"line {line_number}: malformed 'edge'")
            try:
                u, v = int(parts[1]), int(parts[2])
            except ValueError as exc:
                raise GraphFormatError(
                    f"line {line_number}: bad edge endpoints"
                ) from exc
            weight = 1.0
            if len(parts) == 4:
                try:
                    weight = float(parts[3])
                except ValueError as exc:
                    raise GraphFormatError(
                        f"line {line_number}: bad weight {parts[3]!r}"
                    ) from exc
            edges.append((u, v))
            weights.append(weight)
        else:
            raise GraphFormatError(
                f"line {line_number}: unknown directive {parts[0]!r}"
            )
    if num_nodes is None:
        raise GraphFormatError("missing 'nodes' line")
    return Graph(num_nodes, tuple(edges), tuple(weights), name)


def save_graph(graph: Graph, path: PathLike) -> None:
    """Write one graph to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(graph_to_text(graph))


def load_graph(path: PathLike) -> Graph:
    """Read one graph from ``path``; the file stem becomes the default name."""
    path = Path(path)
    return graph_from_text(path.read_text(), name=path.stem)


def save_graphs(graphs: List[Graph], directory: PathLike) -> List[Path]:
    """Write each graph to ``directory/<name or graph_i>.graph``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for index, graph in enumerate(graphs):
        stem = graph.name if graph.name else f"graph_{index:05d}"
        path = directory / f"{stem}.graph"
        save_graph(graph, path)
        paths.append(path)
    return paths


def load_graphs(directory: PathLike) -> List[Graph]:
    """Read every ``*.graph`` file in ``directory`` (sorted by filename)."""
    directory = Path(directory)
    return [load_graph(path) for path in sorted(directory.glob("*.graph"))]
