"""Minimal gate-level circuit IR.

The fast QAOA path never materializes circuits, but a small circuit
representation is needed to (a) cross-check the fast simulator against a
plain gate-by-gate simulation and (b) report quantum resource costs
(gate counts, depth) the way the paper's motivation section reasons
about NISQ budgets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import CircuitError
from repro.quantum import gates
from repro.quantum.statevector import Statevector

_SINGLE_FIXED: Dict[str, np.ndarray] = {
    "h": gates.H,
    "x": gates.X,
    "y": gates.Y,
    "z": gates.Z,
    "s": gates.S,
    "t": gates.T,
}
_SINGLE_PARAM: Dict[str, Callable[[float], np.ndarray]] = {
    "rx": gates.rx,
    "ry": gates.ry,
    "rz": gates.rz,
    "p": gates.phase,
}
_TWO_FIXED: Dict[str, np.ndarray] = {
    "cnot": gates.CNOT,
    "cz": gates.CZ,
    "swap": gates.SWAP,
}
_TWO_PARAM: Dict[str, Callable[[float], np.ndarray]] = {
    "rzz": gates.rzz,
    "rxx": gates.rxx,
}


@dataclass(frozen=True)
class Instruction:
    """One gate: name, target qubits, optional rotation angle."""

    name: str
    qubits: Tuple[int, ...]
    angle: Optional[float] = None

    def matrix(self) -> np.ndarray:
        """The gate's unitary matrix."""
        if self.name in _SINGLE_FIXED:
            return _SINGLE_FIXED[self.name]
        if self.name in _TWO_FIXED:
            return _TWO_FIXED[self.name]
        if self.name in _SINGLE_PARAM:
            return _SINGLE_PARAM[self.name](self._angle())
        if self.name in _TWO_PARAM:
            return _TWO_PARAM[self.name](self._angle())
        raise CircuitError(f"unknown gate {self.name!r}")

    def _angle(self) -> float:
        if self.angle is None:
            raise CircuitError(f"gate {self.name!r} requires an angle")
        return self.angle


class Circuit:
    """An ordered list of gates on ``num_qubits`` qubits."""

    def __init__(self, num_qubits: int):
        if num_qubits < 1:
            raise CircuitError("need at least one qubit")
        self.num_qubits = num_qubits
        self.instructions: List[Instruction] = []

    # ------------------------------------------------------------------
    # Builders (chainable)
    # ------------------------------------------------------------------
    def add(
        self, name: str, qubits: Sequence[int], angle: Optional[float] = None
    ) -> "Circuit":
        """Append a gate after validating its name and qubit indices."""
        name = name.lower()
        qubits = tuple(int(q) for q in qubits)
        expected = self._arity(name)
        if len(qubits) != expected:
            raise CircuitError(
                f"gate {name!r} takes {expected} qubits, got {len(qubits)}"
            )
        if len(set(qubits)) != len(qubits):
            raise CircuitError(f"duplicate qubits {qubits}")
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise CircuitError(f"qubit {q} out of range")
        parametric = name in _SINGLE_PARAM or name in _TWO_PARAM
        if parametric and angle is None:
            raise CircuitError(f"gate {name!r} requires an angle")
        if not parametric and angle is not None:
            raise CircuitError(f"gate {name!r} takes no angle")
        self.instructions.append(Instruction(name, qubits, angle))
        return self

    def h(self, q: int) -> "Circuit":
        """Hadamard."""
        return self.add("h", (q,))

    def x(self, q: int) -> "Circuit":
        """Pauli X."""
        return self.add("x", (q,))

    def rx(self, theta: float, q: int) -> "Circuit":
        """X rotation."""
        return self.add("rx", (q,), theta)

    def ry(self, theta: float, q: int) -> "Circuit":
        """Y rotation."""
        return self.add("ry", (q,), theta)

    def rz(self, theta: float, q: int) -> "Circuit":
        """Z rotation."""
        return self.add("rz", (q,), theta)

    def cnot(self, control: int, target: int) -> "Circuit":
        """CNOT; local convention places ``control`` as qubit index 1."""
        return self.add("cnot", (target, control))

    def cz(self, a: int, b: int) -> "Circuit":
        """Controlled-Z (symmetric)."""
        return self.add("cz", (a, b))

    def rzz(self, theta: float, a: int, b: int) -> "Circuit":
        """ZZ rotation (symmetric)."""
        return self.add("rzz", (a, b), theta)

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    @property
    def num_gates(self) -> int:
        """Total gate count."""
        return len(self.instructions)

    def gate_counts(self) -> Dict[str, int]:
        """Histogram of gate names."""
        counts: Dict[str, int] = {}
        for instruction in self.instructions:
            counts[instruction.name] = counts.get(instruction.name, 0) + 1
        return counts

    def two_qubit_gate_count(self) -> int:
        """Number of two-qubit gates (the dominant NISQ cost)."""
        return sum(1 for ins in self.instructions if len(ins.qubits) == 2)

    def depth(self) -> int:
        """Circuit depth under the as-soon-as-possible schedule."""
        frontier = [0] * self.num_qubits
        for instruction in self.instructions:
            level = max(frontier[q] for q in instruction.qubits) + 1
            for q in instruction.qubits:
                frontier[q] = level
        return max(frontier) if frontier else 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, state: Optional[Statevector] = None) -> Statevector:
        """Simulate on ``state`` (default ``|0...0>``) and return the result."""
        if state is None:
            state = Statevector.zero_state(self.num_qubits)
        elif state.num_qubits != self.num_qubits:
            raise CircuitError("statevector size mismatch")
        else:
            state = state.copy()
        for instruction in self.instructions:
            state.apply_gate(instruction.matrix(), instruction.qubits)
        return state

    @staticmethod
    def _arity(name: str) -> int:
        if name in _SINGLE_FIXED or name in _SINGLE_PARAM:
            return 1
        if name in _TWO_FIXED or name in _TWO_PARAM:
            return 2
        raise CircuitError(f"unknown gate {name!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Circuit(num_qubits={self.num_qubits}, num_gates={self.num_gates})"
