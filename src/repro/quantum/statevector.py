"""Dense statevector simulator.

Little-endian convention: qubit ``q`` is bit ``q`` of the basis-state
index, so ``|q1 q0> = |01>`` is index 1 when qubit 0 is ``1``. Gate
application reshapes the state into a rank-n tensor and contracts the
gate over the target axes; for the sizes in this paper (n <= 15) this is
fast and exact.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import CircuitError
from repro.utils.rng import RngLike, ensure_rng


class Statevector:
    """A normalized pure state on ``num_qubits`` qubits.

    The amplitude array is owned by the instance and mutated in place by
    gate application; use :meth:`copy` to branch.
    """

    def __init__(
        self,
        num_qubits: int,
        data: Optional[np.ndarray] = None,
        copy: bool = True,
    ):
        if num_qubits < 1:
            raise CircuitError(f"need at least 1 qubit, got {num_qubits}")
        if num_qubits > 24:
            raise CircuitError(f"n={num_qubits} exceeds dense-simulation budget")
        self.num_qubits = num_qubits
        dim = 1 << num_qubits
        if data is None:
            self.data = np.zeros(dim, dtype=np.complex128)
            self.data[0] = 1.0
        else:
            array = np.asarray(data, dtype=np.complex128)
            if array.shape != (dim,):
                raise CircuitError(
                    f"statevector shape {array.shape} != ({dim},)"
                )
            # ``copy=False`` lets hot paths hand over a freshly built
            # amplitude array without a redundant defensive copy; the
            # caller must not mutate it afterwards. When ``asarray``
            # already converted (dtype/layout change), the array is
            # private and never needs a second copy.
            if copy and array is data:
                array = array.copy()
            self.data = array

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero_state(cls, num_qubits: int) -> "Statevector":
        """``|0...0>``."""
        return cls(num_qubits)

    @classmethod
    def plus_state(cls, num_qubits: int) -> "Statevector":
        """Uniform superposition ``|+>^n`` — the QAOA initial state."""
        dim = 1 << num_qubits
        data = np.full(dim, 1.0 / np.sqrt(dim), dtype=np.complex128)
        return cls(num_qubits, data)

    @classmethod
    def basis_state(cls, num_qubits: int, index: int) -> "Statevector":
        """Computational basis state ``|index>``."""
        dim = 1 << num_qubits
        if not 0 <= index < dim:
            raise CircuitError(f"basis index {index} out of range")
        data = np.zeros(dim, dtype=np.complex128)
        data[index] = 1.0
        return cls(num_qubits, data)

    def copy(self) -> "Statevector":
        """Deep copy (exactly one amplitude-array copy)."""
        return Statevector(self.num_qubits, self.data.copy(), copy=False)

    # ------------------------------------------------------------------
    # Gate application
    # ------------------------------------------------------------------
    def apply_gate(self, matrix: np.ndarray, qubits: Sequence[int]) -> None:
        """Apply a ``2^k x 2^k`` unitary to the listed qubits, in place.

        ``qubits[0]`` is the least-significant qubit of the gate's local
        index (matching the little-endian global convention).
        """
        qubits = [int(q) for q in qubits]
        k = len(qubits)
        matrix = np.asarray(matrix, dtype=np.complex128)
        if matrix.shape != (1 << k, 1 << k):
            raise CircuitError(
                f"gate on {k} qubits must be {1 << k}x{1 << k}, "
                f"got {matrix.shape}"
            )
        if len(set(qubits)) != k:
            raise CircuitError(f"duplicate qubits in {qubits}")
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise CircuitError(f"qubit {q} out of range")

        n = self.num_qubits
        tensor = self.data.reshape((2,) * n)
        # numpy axis 0 corresponds to the MOST significant qubit n-1.
        axes = [n - 1 - q for q in qubits]
        # Move target axes to the front, most-significant gate qubit first.
        order = axes[::-1] + [a for a in range(n) if a not in axes]
        moved = np.transpose(tensor, order).reshape(1 << k, -1)
        result = matrix @ moved
        restored = result.reshape((2,) * n)
        inverse = np.argsort(order)
        self.data = np.ascontiguousarray(
            np.transpose(restored, inverse)
        ).reshape(-1)

    def apply_diagonal(self, diagonal: np.ndarray) -> None:
        """Multiply elementwise by a full 2^n diagonal operator."""
        diagonal = np.asarray(diagonal)
        if diagonal.shape != self.data.shape:
            raise CircuitError(
                f"diagonal shape {diagonal.shape} != {self.data.shape}"
            )
        self.data = self.data * diagonal

    def apply_rx_all(self, theta: float) -> None:
        """Apply ``RX(theta)`` to every qubit (the QAOA mixer layer).

        Specialized fast path: per qubit the update is
        ``psi' = cos(t/2) psi - i sin(t/2) X_q psi`` where ``X_q psi`` is
        an axis flip of the state tensor.
        """
        c = np.cos(theta / 2.0)
        s = np.sin(theta / 2.0)
        tensor = self.data.reshape((2,) * self.num_qubits)
        for axis in range(self.num_qubits):
            tensor = c * tensor - 1j * s * np.flip(tensor, axis=axis)
        self.data = np.ascontiguousarray(tensor).reshape(-1)

    # ------------------------------------------------------------------
    # Measurement and expectations
    # ------------------------------------------------------------------
    def probabilities(self) -> np.ndarray:
        """Born-rule probabilities over the computational basis."""
        return np.abs(self.data) ** 2

    def norm(self) -> float:
        """L2 norm of the amplitude vector."""
        return float(np.linalg.norm(self.data))

    def normalize(self) -> None:
        """Rescale to unit norm (raises on the zero vector)."""
        norm = self.norm()
        if norm == 0.0:
            raise CircuitError("cannot normalize the zero state")
        self.data /= norm

    def expectation_diagonal(self, diagonal: np.ndarray) -> float:
        """``<psi| D |psi>`` for a real diagonal observable ``D``."""
        diagonal = np.asarray(diagonal, dtype=np.float64)
        if diagonal.shape != self.data.shape:
            raise CircuitError("diagonal length mismatch")
        return float(np.real(np.vdot(self.data, diagonal * self.data)))

    def inner(self, other: "Statevector") -> complex:
        """``<self|other>``."""
        if other.num_qubits != self.num_qubits:
            raise CircuitError("qubit-count mismatch")
        return complex(np.vdot(self.data, other.data))

    def fidelity(self, other: "Statevector") -> float:
        """``|<self|other>|^2``."""
        return float(abs(self.inner(other)) ** 2)

    def sample(
        self, shots: int, rng: RngLike = None
    ) -> np.ndarray:
        """Sample ``shots`` basis-state indices from the Born distribution."""
        if shots < 1:
            raise CircuitError(f"shots must be positive, got {shots}")
        generator = ensure_rng(rng)
        probs = self.probabilities()
        probs = probs / probs.sum()
        return generator.choice(len(probs), size=shots, p=probs)

    def sample_counts(
        self, shots: int, rng: RngLike = None
    ) -> dict:
        """Histogram of :meth:`sample` as ``{basis_index: count}``."""
        samples = self.sample(shots, rng)
        indices, counts = np.unique(samples, return_counts=True)
        return {int(i): int(c) for i, c in zip(indices, counts)}

    def most_probable(self) -> int:
        """Basis index with the largest probability."""
        return int(np.argmax(self.probabilities()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Statevector(num_qubits={self.num_qubits})"
