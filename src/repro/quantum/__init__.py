"""Quantum substrate: gate library, circuit IR, statevector simulator."""

from repro.quantum.statevector import Statevector
from repro.quantum.circuit import Circuit, Instruction
from repro.quantum.noise import (
    GlobalDepolarizingModel,
    NoiseSpec,
    NoisyQAOASimulator,
    PauliTrajectoryModel,
    apply_readout_error,
)
from repro.quantum import gates

__all__ = [
    "Statevector",
    "Circuit",
    "Instruction",
    "GlobalDepolarizingModel",
    "NoiseSpec",
    "NoisyQAOASimulator",
    "PauliTrajectoryModel",
    "apply_readout_error",
    "gates",
]
