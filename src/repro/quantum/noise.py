"""NISQ noise models for QAOA evaluation.

The paper motivates warm starts by NISQ constraints ("shorter coherence
times and higher error rates") and lists noise-robustness as future
work. This module provides the two standard laptop-scale noise models
for diagonal-cost QAOA:

- :class:`GlobalDepolarizingModel` — the analytic workhorse. A global
  depolarizing channel of fidelity ``F`` applied once per layer
  contracts the expectation toward the maximally mixed value exactly:
  ``E_noisy = F^p * E_ideal + (1 - F^p) * E_mixed`` where ``E_mixed``
  is the mean of the cost diagonal. Exact, free, and a good first-order
  model of white noise on QAOA (Wang et al. 2021 show depolarizing
  dominates at depth).
- :class:`PauliTrajectoryModel` — Monte-Carlo trajectories: after each
  layer, each qubit independently suffers X/Y/Z errors with
  probability ``error_rate/3`` each. Averaging trajectories converges
  to the corresponding Pauli channel without ever materializing a
  density matrix (which would be 4^n).

Plus :func:`apply_readout_error` for classical bit-flip noise on
sampled bitstrings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.exceptions import CircuitError
from repro.utils.rng import RngLike, ensure_rng

# NOTE: repro.qaoa imports repro.quantum, so the QAOASimulator import is
# deferred into the functions below to keep the package graph acyclic.


@dataclass(frozen=True)
class NoiseSpec:
    """Noise-strength configuration shared by the models.

    Attributes
    ----------
    layer_fidelity:
        Probability that one full QAOA layer executes without the
        modeled error (global depolarizing parameter per layer).
    qubit_error_rate:
        Per-qubit, per-layer Pauli error probability (trajectory model).
    readout_error:
        Per-bit classical flip probability at measurement.
    """

    layer_fidelity: float = 1.0
    qubit_error_rate: float = 0.0
    readout_error: float = 0.0

    def __post_init__(self):
        if not 0.0 <= self.layer_fidelity <= 1.0:
            raise CircuitError("layer_fidelity must be in [0, 1]")
        if not 0.0 <= self.qubit_error_rate <= 1.0:
            raise CircuitError("qubit_error_rate must be in [0, 1]")
        if not 0.0 <= self.readout_error <= 0.5:
            raise CircuitError("readout_error must be in [0, 0.5]")


class GlobalDepolarizingModel:
    """Exact noisy expectation under per-layer global depolarizing noise."""

    def __init__(self, simulator, layer_fidelity: float):
        if not 0.0 <= layer_fidelity <= 1.0:
            raise CircuitError("layer_fidelity must be in [0, 1]")
        self.simulator = simulator
        self.layer_fidelity = layer_fidelity
        self._mixed_value = float(simulator.problem.cost_diagonal().mean())

    def expectation(self, gammas, betas) -> float:
        """``F^p * E_ideal + (1 - F^p) * <C>_mixed`` — exact."""
        gammas = np.atleast_1d(np.asarray(gammas, dtype=np.float64))
        ideal = self.simulator.expectation(gammas, betas)
        survival = self.layer_fidelity ** len(gammas)
        return survival * ideal + (1.0 - survival) * self._mixed_value

    def approximation_ratio(self, gammas, betas) -> float:
        """Noisy expectation divided by the exact optimum."""
        return self.simulator.problem.approximation_ratio(
            self.expectation(gammas, betas)
        )


class PauliTrajectoryModel:
    """Monte-Carlo Pauli-error trajectories on the statevector.

    Each trajectory runs the ideal layer then, per qubit, with
    probability ``error_rate`` applies a uniformly random Pauli (X, Y or
    Z). The trajectory average converges to the single-qubit
    depolarizing channel with parameter ``error_rate`` per layer.
    """

    def __init__(
        self,
        simulator,
        error_rate: float,
        trajectories: int = 64,
        rng: RngLike = None,
    ):
        if not 0.0 <= error_rate <= 1.0:
            raise CircuitError("error_rate must be in [0, 1]")
        if trajectories < 1:
            raise CircuitError("need at least one trajectory")
        self.simulator = simulator
        self.error_rate = error_rate
        self.trajectories = trajectories
        self._rng = ensure_rng(rng)

    def expectation(self, gammas, betas) -> float:
        """Trajectory-averaged noisy expectation."""
        gammas = np.atleast_1d(np.asarray(gammas, dtype=np.float64))
        betas = np.atleast_1d(np.asarray(betas, dtype=np.float64))
        if self.error_rate == 0.0:
            return self.simulator.expectation(gammas, betas)
        total = 0.0
        for _ in range(self.trajectories):
            total += self._single_trajectory(gammas, betas)
        return total / self.trajectories

    def _single_trajectory(self, gammas, betas) -> float:
        from repro.qaoa.simulator import _apply_mixer

        n = self.simulator.num_qubits
        diag = self.simulator.problem.cost_diagonal()
        dim = 1 << n
        psi = np.full(dim, 1.0 / np.sqrt(dim), dtype=np.complex128)
        for gamma, beta in zip(gammas, betas):
            psi = psi * np.exp(-1j * gamma * diag)
            psi = _apply_mixer(psi, n, beta)
            psi = self._inject_errors(psi, n)
        return float(np.real(np.vdot(psi, diag * psi)))

    def _inject_errors(self, psi: np.ndarray, n: int) -> np.ndarray:
        hits = self._rng.random(n) < self.error_rate
        if not hits.any():
            return psi
        tensor = psi.reshape((2,) * n)
        for qubit in np.nonzero(hits)[0]:
            pauli = self._rng.choice(("X", "Y", "Z"))
            axis = n - 1 - int(qubit)
            if pauli in ("X", "Y"):
                tensor = np.flip(tensor, axis=axis)
            if pauli in ("Y", "Z"):
                # phase -1 on the |1> slice of this qubit (global phase
                # factors of Y are irrelevant to expectations)
                slicer = [slice(None)] * n
                slicer[axis] = 1
                tensor = tensor.copy()
                tensor[tuple(slicer)] *= -1.0
        return tensor.reshape(-1)


def apply_readout_error(
    samples: np.ndarray,
    num_qubits: int,
    flip_probability: float,
    rng: RngLike = None,
) -> np.ndarray:
    """Flip each measured bit independently with ``flip_probability``."""
    if not 0.0 <= flip_probability <= 0.5:
        raise CircuitError("flip_probability must be in [0, 0.5]")
    generator = ensure_rng(rng)
    samples = np.asarray(samples, dtype=np.int64).copy()
    if flip_probability == 0.0:
        return samples
    for qubit in range(num_qubits):
        flips = generator.random(samples.shape[0]) < flip_probability
        samples[flips] ^= 1 << qubit
    return samples


class NoisyQAOASimulator:
    """Facade combining the analytic channel and readout noise.

    Drop-in replacement for the ideal :class:`QAOASimulator` in
    evaluation loops: ``expectation`` applies the global depolarizing
    contraction; ``sample_cut`` additionally corrupts sampled
    bitstrings with readout flips.
    """

    def __init__(
        self,
        problem,
        noise: NoiseSpec,
        rng: RngLike = None,
    ):
        from repro.qaoa.simulator import QAOASimulator

        self.ideal = QAOASimulator(problem)
        self.noise = noise
        self.problem = self.ideal.problem
        self.num_qubits = self.ideal.num_qubits
        self._channel = GlobalDepolarizingModel(
            self.ideal, noise.layer_fidelity
        )
        self._rng = ensure_rng(rng)

    def expectation(self, gammas, betas) -> float:
        """Noisy expectation (analytic depolarizing contraction)."""
        return self._channel.expectation(gammas, betas)

    def approximation_ratio(self, gammas, betas) -> float:
        """Noisy expectation over the exact optimum."""
        return self.problem.approximation_ratio(self.expectation(gammas, betas))

    def expectation_and_gradient(self, gammas, betas):
        """Noisy expectation and its exact gradient.

        The depolarizing contraction is affine in the ideal expectation,
        so the noisy gradient is the ideal gradient scaled by ``F^p``.
        """
        gammas = np.atleast_1d(np.asarray(gammas, dtype=np.float64))
        energy, grad_gamma, grad_beta = self.ideal.expectation_and_gradient(
            gammas, betas
        )
        survival = self.noise.layer_fidelity ** len(gammas)
        mixed = float(self.problem.cost_diagonal().mean())
        noisy = survival * energy + (1.0 - survival) * mixed
        return noisy, survival * grad_gamma, survival * grad_beta

    def sample_cut(
        self, gammas, betas, shots: int = 1024, rng: RngLike = None
    ) -> Tuple[int, float]:
        """Sample with readout flips; returns the best (possibly
        corrupted) measured cut."""
        generator = ensure_rng(rng) if rng is not None else self._rng
        state = self.ideal.state(gammas, betas)
        samples = state.sample(shots, generator)
        samples = apply_readout_error(
            samples, self.num_qubits, self.noise.readout_error, generator
        )
        diagonal = self.problem.cost_diagonal()
        values = diagonal[samples]
        best = int(np.argmax(values))
        return int(samples[best]), float(values[best])
