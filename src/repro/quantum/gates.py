"""Gate matrix library for the statevector simulator.

All matrices are returned as complex128 numpy arrays in the computational
basis, little-endian qubit ordering (qubit ``i`` is bit ``i`` of the
basis-state index).
"""

from __future__ import annotations

import numpy as np

SQRT2_INV = 1.0 / np.sqrt(2.0)

I2 = np.eye(2, dtype=np.complex128)
X = np.array([[0, 1], [1, 0]], dtype=np.complex128)
Y = np.array([[0, -1j], [1j, 0]], dtype=np.complex128)
Z = np.array([[1, 0], [0, -1]], dtype=np.complex128)
H = np.array([[1, 1], [1, -1]], dtype=np.complex128) * SQRT2_INV
S = np.array([[1, 0], [0, 1j]], dtype=np.complex128)
T = np.array([[1, 0], [0, np.exp(1j * np.pi / 4)]], dtype=np.complex128)

CNOT = np.array(
    [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]],
    dtype=np.complex128,
)
CZ = np.diag([1, 1, 1, -1]).astype(np.complex128)
SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]],
    dtype=np.complex128,
)


def rx(theta: float) -> np.ndarray:
    """Rotation about X: ``exp(-i theta X / 2)``."""
    c, s = np.cos(theta / 2.0), np.sin(theta / 2.0)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=np.complex128)


def ry(theta: float) -> np.ndarray:
    """Rotation about Y: ``exp(-i theta Y / 2)``."""
    c, s = np.cos(theta / 2.0), np.sin(theta / 2.0)
    return np.array([[c, -s], [s, c]], dtype=np.complex128)


def rz(theta: float) -> np.ndarray:
    """Rotation about Z: ``exp(-i theta Z / 2)``."""
    phase = np.exp(-1j * theta / 2.0)
    return np.array([[phase, 0], [0, np.conj(phase)]], dtype=np.complex128)


def rzz(theta: float) -> np.ndarray:
    """Two-qubit ZZ rotation: ``exp(-i theta Z(x)Z / 2)`` (diagonal)."""
    phase = np.exp(-1j * theta / 2.0)
    return np.diag([phase, np.conj(phase), np.conj(phase), phase]).astype(
        np.complex128
    )


def rxx(theta: float) -> np.ndarray:
    """Two-qubit XX rotation: ``exp(-i theta X(x)X / 2)``."""
    c = np.cos(theta / 2.0)
    s = -1j * np.sin(theta / 2.0)
    matrix = np.zeros((4, 4), dtype=np.complex128)
    matrix[0, 0] = matrix[1, 1] = matrix[2, 2] = matrix[3, 3] = c
    matrix[0, 3] = matrix[3, 0] = s
    matrix[1, 2] = matrix[2, 1] = s
    return matrix


def phase(lam: float) -> np.ndarray:
    """Phase gate ``diag(1, e^{i lam})``."""
    return np.diag([1.0, np.exp(1j * lam)]).astype(np.complex128)


def u3(theta: float, phi: float, lam: float) -> np.ndarray:
    """Generic single-qubit unitary in the standard U3 parameterization."""
    c, s = np.cos(theta / 2.0), np.sin(theta / 2.0)
    return np.array(
        [
            [c, -np.exp(1j * lam) * s],
            [np.exp(1j * phi) * s, np.exp(1j * (phi + lam)) * c],
        ],
        dtype=np.complex128,
    )


def is_unitary(matrix: np.ndarray, atol: float = 1e-10) -> bool:
    """True if ``matrix`` is unitary to tolerance ``atol``."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    identity = np.eye(matrix.shape[0], dtype=np.complex128)
    return bool(np.allclose(matrix.conj().T @ matrix, identity, atol=atol))
